"""Unit + acceptance tests for the ingest service building blocks."""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.faults.campaign import FaultSpec
from repro.obs import MetricsRegistry
from repro.service import (
    IngestService,
    MergedArrivals,
    ServiceSpec,
    TenantClassSpec,
    generate_service_faults,
    load_snapshot,
    save_snapshot,
    slo_table,
)
from repro.service.slo import class_latency, class_violations, tenant_latency
from repro.sim import SnapshotError

from .specs import golden_spec

CLASSES = (
    TenantClassSpec("fast", 4, 10.0, 1024, 5.0, diurnal_amplitude=0.5),
    TenantClassSpec("slow", 2, 40.0, 4096, 20.0),
)


# ---------------------------------------------------------------------------
# Arrivals
# ---------------------------------------------------------------------------
def _take(merged: MergedArrivals, n: int):
    return [merged.pop() for _ in range(n)]


def test_arrivals_deterministic_per_seed():
    a = _take(MergedArrivals(CLASSES, seed=7), 50)
    b = _take(MergedArrivals(CLASSES, seed=7), 50)
    c = _take(MergedArrivals(CLASSES, seed=8), 50)
    assert a == b
    assert a != c


def test_arrivals_merge_is_time_ordered():
    arrivals = _take(MergedArrivals(CLASSES, seed=3), 80)
    times = [a.at for a in arrivals]
    assert times == sorted(times)
    assert {a.cls for a in arrivals} == {"fast", "slow"}
    # Tenant indices are globally unique across classes.
    fast = {a.tenant_index for a in arrivals if a.cls == "fast"}
    slow = {a.tenant_index for a in arrivals if a.cls == "slow"}
    assert fast <= set(range(0, 4))
    assert slow <= set(range(4, 6))
    assert not fast & slow


def test_arrivals_seq_is_per_tenant_and_unique():
    arrivals = _take(MergedArrivals(CLASSES, seed=11), 120)
    keys = [(a.tenant, a.seq) for a in arrivals]
    assert len(set(keys)) == len(keys)
    for tenant in {a.tenant for a in arrivals}:
        seqs = [a.seq for a in arrivals if a.tenant == tenant]
        assert seqs == list(range(len(seqs)))


def test_arrivals_export_restore_resumes_identically():
    reference = MergedArrivals(CLASSES, seed=5)
    prefix = _take(reference, 30)

    replay = MergedArrivals(CLASSES, seed=5)
    assert _take(replay, 12) == prefix[:12]
    state = pickle.loads(pickle.dumps(replay.export_state()))

    resumed = MergedArrivals(CLASSES, seed=999)  # seed ignored on restore
    resumed.restore_state(state)
    assert _take(resumed, 18) == prefix[12:]
    assert resumed.total == reference.total


def test_arrivals_restore_rejects_class_mismatch():
    state = MergedArrivals(CLASSES, seed=5).export_state()
    other = MergedArrivals(CLASSES[:1], seed=5)
    with pytest.raises(ValueError):
        other.restore_state(state)


def test_diurnal_rate_shape():
    spec = CLASSES[0]
    assert spec.base_rate == pytest.approx(0.4)
    assert spec.peak_rate == pytest.approx(0.6)
    assert spec.rate_at(0.0) == pytest.approx(spec.base_rate)
    assert spec.rate_at(spec.diurnal_period / 4) == pytest.approx(spec.peak_rate)
    flat = CLASSES[1]
    assert flat.rate_at(12345.0) == pytest.approx(flat.base_rate)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"tenants": 0},
        {"mean_interarrival": 0.0},
        {"size": 0},
        {"slo": 0.0},
        {"diurnal_amplitude": 1.0},
        {"diurnal_period": 0.0},
    ],
)
def test_tenant_class_validation(kwargs):
    base = dict(
        name="x", tenants=1, mean_interarrival=1.0, size=1, slo=1.0
    )
    base.update(kwargs)
    with pytest.raises(ValueError):
        TenantClassSpec(**base)


# ---------------------------------------------------------------------------
# Spec / snapshot plumbing
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"classes": ()},
        {"horizon": 0.0},
        {"checkpoint_every": 0.0},
        {"protocol": "nfs"},
        {"shards": 0},
        {"n_client_hosts": 0},
    ],
)
def test_service_spec_validation(kwargs):
    base = dict(classes=CLASSES, horizon=100.0, checkpoint_every=50.0)
    base.update(kwargs)
    with pytest.raises(ValueError):
        ServiceSpec(**base)


def test_default_spec_partitions_tenants():
    spec = ServiceSpec.default(tenants=500)
    assert spec.total_tenants == 500
    assert [c.name for c in spec.classes] == ["interactive", "batch", "bulk"]
    assert spec.classes[0].diurnal_amplitude > 0


def test_snapshot_rejects_garbage(tmp_path):
    missing = tmp_path / "nope.pkl"
    with pytest.raises(SnapshotError):
        load_snapshot(missing)

    junk = tmp_path / "junk.pkl"
    junk.write_bytes(b"not a pickle at all")
    with pytest.raises(SnapshotError):
        load_snapshot(junk)

    wrong_format = tmp_path / "fmt.pkl"
    wrong_format.write_bytes(pickle.dumps({"format": "something-else"}))
    with pytest.raises(SnapshotError):
        load_snapshot(wrong_format)

    future = tmp_path / "future.pkl"
    future.write_bytes(
        pickle.dumps(
            {"format": "repro-service-snapshot", "version": 99, "state": {}}
        )
    )
    with pytest.raises(SnapshotError, match="version"):
        load_snapshot(future)


def test_snapshot_round_trip(tmp_path):
    path = tmp_path / "ok.pkl"
    save_snapshot(path, {"spec": "anything", "clock": {"now": 1.0}})
    assert load_snapshot(path) == {"spec": "anything", "clock": {"now": 1.0}}


def test_restore_rejects_spec_mismatch(tmp_path):
    # resume() always rebuilds from the snapshot's own spec; the guard
    # protects restoring a snapshot into a service built differently.
    service = IngestService(golden_spec())
    service.run(checkpoint_dir=tmp_path)
    state = load_snapshot(tmp_path / "ckpt_001.pkl")
    other = dataclasses.replace(golden_spec(), max_inflight=99)
    with pytest.raises(SnapshotError, match="spec"):
        IngestService(other, _restore=state)


def test_generate_service_faults_is_deterministic():
    a = generate_service_faults(1, 6, 86400.0)
    b = generate_service_faults(1, 6, 86400.0)
    c = generate_service_faults(2, 6, 86400.0)
    assert a == b
    assert a != c
    assert list(a) == sorted(a, key=lambda f: (f.at, f.kind, f.datanode or ""))
    assert all(0 < f.at < 86400.0 for f in a)
    kinds = {f.kind for f in generate_service_faults(1, 6, 30 * 86400.0)}
    assert kinds <= {"throttle", "unthrottle", "kill", "revive"}
    assert "throttle" in kinds


# ---------------------------------------------------------------------------
# SLO table
# ---------------------------------------------------------------------------
def test_slo_table_renders_classes_and_worst_tenants():
    metrics = MetricsRegistry(enabled=True)
    for latency in (1.0, 2.0, 30.0):
        metrics.observe(class_latency("fast"), latency)
        if latency > CLASSES[0].slo:
            metrics.count(class_violations("fast"))
    metrics.observe(tenant_latency("fast", "fast-0001"), 30.0)
    metrics.observe(tenant_latency("fast", "fast-0000"), 1.0)

    table = slo_table(metrics, CLASSES)
    lines = table.splitlines()
    assert lines[0].split() == [
        "class", "count", "p50", "p95", "p99", "slo", "violations",
    ]
    fast_row = next(l for l in lines if l.startswith("fast"))
    assert fast_row.split()[1] == "3"
    assert fast_row.split()[-1] == "1"
    slow_row = next(l for l in lines if l.startswith("slow"))
    assert slow_row.split()[1] == "0"
    assert "worst tenants by p99 (top 2 of 2)" in table
    # Worst tenant sorts first.
    assert table.index("fast-0001") < table.index("fast-0000")
    # Byte determinism: rendering twice gives identical text.
    assert slo_table(metrics, CLASSES) == table


# ---------------------------------------------------------------------------
# Acceptance: 500 tenants over a multi-day horizon with backpressure
# ---------------------------------------------------------------------------
def _acceptance_spec() -> ServiceSpec:
    """500 tenants, 48 simulated hours, with a morning-peak brownout.

    All six datanodes are throttled to 0.05 Mbps across the interactive
    diurnal peak, so the bounded queue overflows and admission control
    must actually reject work (nonzero backpressure is asserted below).
    """
    faults = []
    for i in range(6):
        faults.append(
            FaultSpec(kind="throttle", at=18000.0, datanode=f"dn{i}",
                      rate_mbps=0.05)
        )
        faults.append(
            FaultSpec(kind="unthrottle", at=26000.0, datanode=f"dn{i}")
        )
    spec = ServiceSpec.default(
        tenants=500,
        horizon=48 * 3600.0,
        checkpoint_every=6 * 3600.0,
        heartbeat_interval=60.0,
        dead_node_heartbeats=30,
        max_inflight=2,
        queue_limit=3,
        faults=tuple(faults),
    )
    classes = tuple(
        dataclasses.replace(c, mean_interarrival=c.mean_interarrival * 2)
        for c in spec.classes
    )
    return dataclasses.replace(spec, classes=classes)


def test_service_sustains_500_tenants_with_backpressure():
    report = IngestService(_acceptance_spec()).run()
    counts = report.counts

    assert counts["tenants"] == 500
    assert counts["segments"] == 8
    assert counts["final_time"] > 40 * 3600.0
    assert counts["arrivals"] > 3000

    # Admission control engaged: the queue hit its bound and rejections
    # were journaled — while the bounds themselves were never exceeded.
    assert counts["rejected"] > 0
    assert counts["max_queue_depth"] == 3
    assert counts["queue_bounded"]
    assert counts["inflight_bounded"]
    assert counts["conservation_ok"]
    assert '"kind": "service_reject"' in report.journal_text

    # Per-tenant p99s come straight from the obs histograms.
    assert "worst tenants by p99" in report.slo_text
    for cls in ("interactive", "batch", "bulk"):
        assert report.classes[cls]["completed"] > 0
        assert report.classes[cls]["p99"] >= report.classes[cls]["p50"]
    # The brownout pushed interactive uploads past their SLO.
    assert report.classes["interactive"]["violations"] > 0
    total_rejected = sum(c["rejected"] for c in report.classes.values())
    assert total_rejected == counts["rejected"]
