"""Kernel edge cases: ordering guarantees, defuse semantics, conditions."""

import pytest

from repro.sim import Environment, Interrupt


@pytest.fixture()
def env():
    return Environment()


class TestUrgentOrdering:
    def test_process_start_precedes_same_instant_interrupt(self, env):
        """A process created and interrupted at the same instant must
        start before the interrupt is delivered (so the try/except in the
        process body can catch it)."""
        caught = []

        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                caught.append("caught")

        p = env.process(victim(env))
        p.interrupt("immediate")
        env.run()
        assert caught == ["caught"]

    def test_interrupt_beats_same_instant_timeout(self, env):
        """An interrupt scheduled at time T runs before ordinary events
        already queued for T."""
        order = []

        def victim(env):
            try:
                yield env.timeout(5)
                order.append("timeout")
            except Interrupt:
                order.append("interrupt")

        def attacker(env, v):
            yield env.timeout(5)
            if v.is_alive:
                v.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        # The victim's own 5s timeout was queued before the attacker ran,
        # so the timeout fires first — attacker sees a finished process
        # and must not crash (guarded by is_alive).
        assert order == ["timeout"]


class TestDefuseSemantics:
    def test_condition_defuses_losing_failures(self, env):
        """any_of resolving successfully defuses later constituent
        failures instead of crashing the run."""

        def failer(env):
            yield env.timeout(2)
            raise ValueError("late failure")

        def waiter(env):
            fast = env.timeout(1, value="fast")
            slow = env.process(failer(env))
            got = yield fast | slow
            return list(got.values())

        p = env.process(waiter(env))
        assert env.run(until=p) == ["fast"]
        env.run()  # the late failure must not surface

    def test_failed_until_event_reraises_not_crashes(self, env):
        def failer(env):
            yield env.timeout(1)
            raise KeyError("boom")

        with pytest.raises(KeyError):
            env.run(until=env.process(failer(env)))


class TestZeroDelay:
    def test_zero_timeout_chains_preserve_order(self, env):
        log = []

        def proc(env, tag):
            for i in range(3):
                yield env.timeout(0)
                log.append((tag, i))

        env.process(proc(env, "a"))
        env.process(proc(env, "b"))
        env.run()
        # Round-robin interleaving: FIFO among same-instant events.
        assert log == [
            ("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2), ("b", 2)
        ]

    def test_immediate_succeed_runs_before_timeouts(self, env):
        log = []
        ev = env.event()

        def waiter(env):
            yield ev
            log.append("event")

        def timed(env):
            yield env.timeout(0)
            log.append("timeout")

        env.process(waiter(env))
        env.process(timed(env))
        ev.succeed()
        env.run()
        assert set(log) == {"event", "timeout"}


class TestProcessValueSemantics:
    def test_generator_return_none_by_default(self, env):
        def proc(env):
            yield env.timeout(1)

        assert env.run(until=env.process(proc(env))) is None

    def test_nested_yield_from(self, env):
        def inner(env):
            yield env.timeout(1)
            return 21

        def outer(env):
            value = yield from inner(env)
            return value * 2

        assert env.run(until=env.process(outer(env))) == 42
