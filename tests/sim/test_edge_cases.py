"""Kernel edge cases: ordering guarantees, defuse semantics, conditions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Interrupt


@pytest.fixture()
def env():
    return Environment()


class TestUrgentOrdering:
    def test_process_start_precedes_same_instant_interrupt(self, env):
        """A process created and interrupted at the same instant must
        start before the interrupt is delivered (so the try/except in the
        process body can catch it)."""
        caught = []

        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                caught.append("caught")

        p = env.process(victim(env))
        p.interrupt("immediate")
        env.run()
        assert caught == ["caught"]

    def test_interrupt_beats_same_instant_timeout(self, env):
        """An interrupt scheduled at time T runs before ordinary events
        already queued for T."""
        order = []

        def victim(env):
            try:
                yield env.timeout(5)
                order.append("timeout")
            except Interrupt:
                order.append("interrupt")

        def attacker(env, v):
            yield env.timeout(5)
            if v.is_alive:
                v.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        # The victim's own 5s timeout was queued before the attacker ran,
        # so the timeout fires first — attacker sees a finished process
        # and must not crash (guarded by is_alive).
        assert order == ["timeout"]


class TestDefuseSemantics:
    def test_condition_defuses_losing_failures(self, env):
        """any_of resolving successfully defuses later constituent
        failures instead of crashing the run."""

        def failer(env):
            yield env.timeout(2)
            raise ValueError("late failure")

        def waiter(env):
            fast = env.timeout(1, value="fast")
            slow = env.process(failer(env))
            got = yield fast | slow
            return list(got.values())

        p = env.process(waiter(env))
        assert env.run(until=p) == ["fast"]
        env.run()  # the late failure must not surface

    def test_failed_until_event_reraises_not_crashes(self, env):
        def failer(env):
            yield env.timeout(1)
            raise KeyError("boom")

        with pytest.raises(KeyError):
            env.run(until=env.process(failer(env)))


class TestZeroDelay:
    def test_zero_timeout_chains_preserve_order(self, env):
        log = []

        def proc(env, tag):
            for i in range(3):
                yield env.timeout(0)
                log.append((tag, i))

        env.process(proc(env, "a"))
        env.process(proc(env, "b"))
        env.run()
        # Round-robin interleaving: FIFO among same-instant events.
        assert log == [
            ("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2), ("b", 2)
        ]

    def test_immediate_succeed_runs_before_timeouts(self, env):
        log = []
        ev = env.event()

        def waiter(env):
            yield ev
            log.append("event")

        def timed(env):
            yield env.timeout(0)
            log.append("timeout")

        env.process(waiter(env))
        env.process(timed(env))
        ev.succeed()
        env.run()
        assert set(log) == {"event", "timeout"}


class TestProcessValueSemantics:
    def test_generator_return_none_by_default(self, env):
        def proc(env):
            yield env.timeout(1)

        assert env.run(until=env.process(proc(env))) is None

    def test_nested_yield_from(self, env):
        def inner(env):
            yield env.timeout(1)
            return 21

        def outer(env):
            value = yield from inner(env)
            return value * 2

        assert env.run(until=env.process(outer(env))) == 42


class TestSchedulerHousekeeping:
    def test_compaction_fires_exactly_at_threshold(self, env):
        """Compaction triggers at COMPACT_MIN_TOMBSTONES *and* majority:
        schedule 2×threshold, cancel threshold − 1 (no compact yet), then
        one more tips both conditions at once."""
        threshold = Environment.COMPACT_MIN_TOMBSTONES
        timers = [env.timeout(10.0 + i) for i in range(2 * threshold)]
        for timer in timers[: threshold - 1]:
            timer.cancel()
        assert env.compactions_run == 0
        assert env._tombstones == threshold - 1
        timers[threshold - 1].cancel()
        # threshold tombstones, 2×threshold entries: 2·t ≥ entries holds
        # with equality, so the compaction must fire exactly here.
        assert env.compactions_run == 1
        assert env._tombstones == 0
        assert len(env) == threshold

    def test_peek_after_cancelling_everything(self, env):
        """Cancelling every pending event leaves an 'empty' schedule even
        while tombstones still sit in the heap."""
        timers = [env.timeout(1.0 + i) for i in range(10)]
        for timer in timers:
            timer.cancel()
        assert env.peek() == float("inf")
        assert len(env) == 0
        env.run()  # terminates immediately; nothing left to dispatch
        assert env.events_processed == 0
        assert env.tombstones_skipped >= 10

    def test_schedule_at_in_the_past_raises(self, env):
        def proc(env):
            yield env.timeout(5.0)
            env.schedule_at(env.event(), 4.0)

        env.process(proc(env))
        with pytest.raises(ValueError, match="past"):
            env.run()

    def test_schedule_at_now_is_allowed(self, env):
        fired = []

        def proc(env):
            yield env.timeout(5.0)
            ev = env.event()
            ev._ok = True
            ev.callbacks.append(lambda _: fired.append(env.now))
            env.schedule_at(ev, env.now)

        env.process(proc(env))
        env.run()
        assert fired == [5.0]

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["schedule", "cancel"]),
                st.floats(min_value=0.0, max_value=100.0),
            ),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_interleaved_cancel_and_compact_invariants(self, ops):
        """Arbitrary schedule/cancel interleavings keep the heap honest:
        len() matches live events, peek() matches the earliest live one,
        and the surviving timers all fire in order."""
        env = Environment()
        live = {}
        for op, when in ops:
            if op == "schedule":
                timer = env.timeout(when)
                live[id(timer)] = (when, timer)
            elif live:
                # Deterministically pick a victim: the latest-deadline one.
                key = max(live, key=lambda k: (live[k][0], k))
                _, timer = live.pop(key)
                timer.cancel()
        assert len(env) == len(live)
        expected_peek = (
            min(when for when, _ in live.values()) if live else float("inf")
        )
        assert env.peek() == expected_peek
        fired = []
        for _, timer in live.values():
            timer.callbacks.append(lambda ev: fired.append(env.now))
        env.run()
        assert fired == sorted(when for when, _ in live.values())
        assert env._tombstones == 0  # run() drains tombstones too
