"""Unit tests for Resource and Store primitives."""

import pytest

from repro.sim import Environment, Resource, Store


@pytest.fixture()
def env():
    return Environment()


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_immediate_grant_under_capacity(self, env):
        res = Resource(env, capacity=2)
        log = []

        def user(env, res, tag):
            with res.request() as req:
                yield req
                log.append((tag, env.now))
                yield env.timeout(1)

        env.process(user(env, res, "a"))
        env.process(user(env, res, "b"))
        env.run()
        assert log == [("a", 0), ("b", 0)]

    def test_fifo_queueing_serializes(self, env):
        res = Resource(env, capacity=1)
        log = []

        def user(env, res, tag, hold):
            with res.request() as req:
                yield req
                log.append((tag, env.now))
                yield env.timeout(hold)

        env.process(user(env, res, "a", 2))
        env.process(user(env, res, "b", 2))
        env.process(user(env, res, "c", 2))
        env.run()
        assert log == [("a", 0), ("b", 2), ("c", 4)]

    def test_release_wakes_waiter(self, env):
        res = Resource(env, capacity=1)
        order = []

        def holder(env, res):
            req = res.request()
            yield req
            yield env.timeout(5)
            res.release(req)
            order.append(("released", env.now))

        def waiter(env, res):
            with res.request() as req:
                yield req
                order.append(("acquired", env.now))

        env.process(holder(env, res))
        env.process(waiter(env, res))
        env.run()
        assert order == [("released", 5), ("acquired", 5)]

    def test_cancel_waiting_request(self, env):
        res = Resource(env, capacity=1)
        got = []

        def holder(env, res):
            req = res.request()
            yield req
            yield env.timeout(10)
            res.release(req)

        def impatient(env, res):
            req = res.request()
            result = yield req | env.timeout(1)
            if req not in result:
                req.cancel()
                got.append("gave up")

        def patient(env, res):
            with res.request() as req:
                yield req
                got.append(("patient acquired", env.now))

        env.process(holder(env, res))
        env.process(impatient(env, res))
        env.process(patient(env, res))
        env.run()
        assert "gave up" in got
        assert ("patient acquired", 10) in got

    def test_count_and_queue_len(self, env):
        res = Resource(env, capacity=1)

        def probe(env, res):
            req1 = res.request()
            yield req1
            res.request()  # queued
            assert res.count == 1
            assert res.queue_len == 1

        env.process(probe(env, res))
        env.run()

    def test_double_release_is_noop(self, env):
        res = Resource(env, capacity=1)

        def proc(env, res):
            req = res.request()
            yield req
            res.release(req)
            res.release(req)  # should not raise

        env.process(proc(env, res))
        env.run()


class TestStore:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_put_then_get(self, env):
        store = Store(env)
        got = []

        def producer(env, store):
            yield store.put("item1")
            yield store.put("item2")

        def consumer(env, store):
            for _ in range(2):
                item = yield store.get()
                got.append(item)

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert got == ["item1", "item2"]

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        got = []

        def consumer(env, store):
            item = yield store.get()
            got.append((item, env.now))

        def producer(env, store):
            yield env.timeout(3)
            yield store.put("late")

        env.process(consumer(env, store))
        env.process(producer(env, store))
        env.run()
        assert got == [("late", 3)]

    def test_put_blocks_when_full(self, env):
        store = Store(env, capacity=1)
        log = []

        def producer(env, store):
            yield store.put(1)
            log.append(("put1", env.now))
            yield store.put(2)
            log.append(("put2", env.now))

        def consumer(env, store):
            yield env.timeout(5)
            item = yield store.get()
            log.append(("got", item, env.now))

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert ("put1", 0) in log
        assert ("got", 1, 5) in log
        assert ("put2", 5) in log

    def test_filtered_get(self, env):
        store = Store(env)
        got = []

        def producer(env, store):
            for seq in (1, 2, 3):
                yield store.put({"seq": seq})

        def consumer(env, store):
            item = yield store.get(filter=lambda p: p["seq"] == 2)
            got.append(item["seq"])

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert got == [2]
        assert [i["seq"] for i in store.items] == [1, 3]

    def test_fifo_order_preserved(self, env):
        store = Store(env)
        got = []

        def producer(env, store):
            for i in range(20):
                yield store.put(i)

        def consumer(env, store):
            for _ in range(20):
                item = yield store.get()
                got.append(item)

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert got == list(range(20))

    def test_drain_returns_all_and_unblocks_putters(self, env):
        store = Store(env, capacity=2)
        log = []

        def producer(env, store):
            yield store.put("a")
            yield store.put("b")
            yield store.put("c")  # blocks until drain
            log.append(("c put", env.now))

        def drainer(env, store):
            yield env.timeout(2)
            items = store.drain()
            log.append(("drained", items, env.now))

        env.process(producer(env, store))
        env.process(drainer(env, store))
        env.run()
        assert ("drained", ["a", "b"], 2) in log
        assert ("c put", 2) in log

    def test_multiple_getters_fifo(self, env):
        store = Store(env)
        got = []

        def consumer(env, store, tag):
            item = yield store.get()
            got.append((tag, item))

        def producer(env, store):
            yield env.timeout(1)
            yield store.put("x")
            yield store.put("y")

        env.process(consumer(env, store, "first"))
        env.process(consumer(env, store, "second"))
        env.process(producer(env, store))
        env.run()
        assert got == [("first", "x"), ("second", "y")]

    def test_len_reflects_buffered_items(self, env):
        store = Store(env)

        def proc(env, store):
            yield store.put(1)
            yield store.put(2)
            assert len(store) == 2
            yield store.get()
            assert len(store) == 1

        env.process(proc(env, store))
        env.run()
