"""Unit tests for Channel, Resource and Store primitives."""

import pytest

from repro.sim import Channel, Environment, Resource, Store


@pytest.fixture()
def env():
    return Environment()


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_immediate_grant_under_capacity(self, env):
        res = Resource(env, capacity=2)
        log = []

        def user(env, res, tag):
            with res.request() as req:
                yield req
                log.append((tag, env.now))
                yield env.timeout(1)

        env.process(user(env, res, "a"))
        env.process(user(env, res, "b"))
        env.run()
        assert log == [("a", 0), ("b", 0)]

    def test_fifo_queueing_serializes(self, env):
        res = Resource(env, capacity=1)
        log = []

        def user(env, res, tag, hold):
            with res.request() as req:
                yield req
                log.append((tag, env.now))
                yield env.timeout(hold)

        env.process(user(env, res, "a", 2))
        env.process(user(env, res, "b", 2))
        env.process(user(env, res, "c", 2))
        env.run()
        assert log == [("a", 0), ("b", 2), ("c", 4)]

    def test_release_wakes_waiter(self, env):
        res = Resource(env, capacity=1)
        order = []

        def holder(env, res):
            req = res.request()
            yield req
            yield env.timeout(5)
            res.release(req)
            order.append(("released", env.now))

        def waiter(env, res):
            with res.request() as req:
                yield req
                order.append(("acquired", env.now))

        env.process(holder(env, res))
        env.process(waiter(env, res))
        env.run()
        assert order == [("released", 5), ("acquired", 5)]

    def test_cancel_waiting_request(self, env):
        res = Resource(env, capacity=1)
        got = []

        def holder(env, res):
            req = res.request()
            yield req
            yield env.timeout(10)
            res.release(req)

        def impatient(env, res):
            req = res.request()
            result = yield req | env.timeout(1)
            if req not in result:
                req.cancel()
                got.append("gave up")

        def patient(env, res):
            with res.request() as req:
                yield req
                got.append(("patient acquired", env.now))

        env.process(holder(env, res))
        env.process(impatient(env, res))
        env.process(patient(env, res))
        env.run()
        assert "gave up" in got
        assert ("patient acquired", 10) in got

    def test_count_and_queue_len(self, env):
        res = Resource(env, capacity=1)

        def probe(env, res):
            req1 = res.request()
            yield req1
            res.request()  # queued
            assert res.count == 1
            assert res.queue_len == 1

        env.process(probe(env, res))
        env.run()

    def test_double_release_is_noop(self, env):
        res = Resource(env, capacity=1)

        def proc(env, res):
            req = res.request()
            yield req
            res.release(req)
            res.release(req)  # should not raise

        env.process(proc(env, res))
        env.run()


class TestStore:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_put_then_get(self, env):
        store = Store(env)
        got = []

        def producer(env, store):
            yield store.put("item1")
            yield store.put("item2")

        def consumer(env, store):
            for _ in range(2):
                item = yield store.get()
                got.append(item)

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert got == ["item1", "item2"]

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        got = []

        def consumer(env, store):
            item = yield store.get()
            got.append((item, env.now))

        def producer(env, store):
            yield env.timeout(3)
            yield store.put("late")

        env.process(consumer(env, store))
        env.process(producer(env, store))
        env.run()
        assert got == [("late", 3)]

    def test_put_blocks_when_full(self, env):
        store = Store(env, capacity=1)
        log = []

        def producer(env, store):
            yield store.put(1)
            log.append(("put1", env.now))
            yield store.put(2)
            log.append(("put2", env.now))

        def consumer(env, store):
            yield env.timeout(5)
            item = yield store.get()
            log.append(("got", item, env.now))

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert ("put1", 0) in log
        assert ("got", 1, 5) in log
        assert ("put2", 5) in log

    def test_filtered_get(self, env):
        store = Store(env)
        got = []

        def producer(env, store):
            for seq in (1, 2, 3):
                yield store.put({"seq": seq})

        def consumer(env, store):
            item = yield store.get(filter=lambda p: p["seq"] == 2)
            got.append(item["seq"])

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert got == [2]
        assert [i["seq"] for i in store.items] == [1, 3]

    def test_fifo_order_preserved(self, env):
        store = Store(env)
        got = []

        def producer(env, store):
            for i in range(20):
                yield store.put(i)

        def consumer(env, store):
            for _ in range(20):
                item = yield store.get()
                got.append(item)

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert got == list(range(20))

    def test_drain_returns_all_and_unblocks_putters(self, env):
        store = Store(env, capacity=2)
        log = []

        def producer(env, store):
            yield store.put("a")
            yield store.put("b")
            yield store.put("c")  # blocks until drain
            log.append(("c put", env.now))

        def drainer(env, store):
            yield env.timeout(2)
            items = store.drain()
            log.append(("drained", items, env.now))

        env.process(producer(env, store))
        env.process(drainer(env, store))
        env.run()
        assert ("drained", ["a", "b"], 2) in log
        assert ("c put", 2) in log

    def test_multiple_getters_fifo(self, env):
        store = Store(env)
        got = []

        def consumer(env, store, tag):
            item = yield store.get()
            got.append((tag, item))

        def producer(env, store):
            yield env.timeout(1)
            yield store.put("x")
            yield store.put("y")

        env.process(consumer(env, store, "first"))
        env.process(consumer(env, store, "second"))
        env.process(producer(env, store))
        env.run()
        assert got == [("first", "x"), ("second", "y")]

    def test_len_reflects_buffered_items(self, env):
        store = Store(env)

        def proc(env, store):
            yield store.put(1)
            yield store.put(2)
            assert len(store) == 2
            yield store.get()
            assert len(store) == 1

        env.process(proc(env, store))
        env.run()

class TestChannel:
    """The analytic FIFO channel behind NIC and disk occupancy."""

    def test_quote_from_idle(self, env):
        ch = Channel(env)
        assert ch.quote(size=1000, rate=1000.0) == pytest.approx(1.0)
        assert ch.busy_until == pytest.approx(1.0)
        assert ch.busy

    def test_quotes_chain_fifo(self, env):
        """Back-to-back quotes serialize exactly like a capacity-1
        Resource held for size/rate each."""
        ch = Channel(env)
        ends = [ch.quote(1000, 1000.0) for _ in range(3)]
        assert ends == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]

    def test_quote_after_idle_gap_starts_now(self, env):
        ch = Channel(env)
        ch.quote(1000, 1000.0)  # busy until t=1

        def proc(env, ch):
            yield env.timeout(5)
            assert not ch.busy
            assert ch.quote(1000, 1000.0) == pytest.approx(6.0)

        env.run(until=env.process(proc(env, ch)))

    def test_zero_size_completes_immediately(self, env):
        ch = Channel(env)
        assert ch.quote(0, 1000.0) == pytest.approx(0.0)
        assert not ch.busy

    def test_invalid_rate(self, env):
        ch = Channel(env)
        with pytest.raises(ValueError):
            ch.quote(1000, 0)
        with pytest.raises(ValueError):
            ch.reserve(1000, -1.0)

    def test_reserve_fires_at_completion(self, env):
        ch = Channel(env)
        done = []

        def proc(env, ch):
            res = ch.reserve(1000, 1000.0)
            yield res
            done.append(env.now)

        env.run(until=env.process(proc(env, ch)))
        assert done == [pytest.approx(1.0)]

    def test_reservations_chain_fifo(self, env):
        ch = Channel(env)
        order = []

        def waiter(env, res, tag):
            yield res
            order.append((tag, env.now))

        r1 = ch.reserve(1000, 1000.0)
        r2 = ch.reserve(1000, 1000.0)
        env.process(waiter(env, r1, "first"))
        env.process(waiter(env, r2, "second"))
        env.run()
        assert order == [("first", pytest.approx(1.0)), ("second", pytest.approx(2.0))]

    def test_queue_len_counts_not_yet_transmitting(self, env):
        ch = Channel(env)
        ch.reserve(1000, 1000.0)          # transmitting now
        ch.reserve(1000, 1000.0)          # queued behind it
        ch.reserve(1000, 1000.0)          # queued
        assert ch.queue_len == 2

    def test_preempt_mid_transmission_keeps_clocked_bytes(self, env):
        """Re-quoting at half-way: bytes already sent stay at the old
        rate, the remainder finishes at the new rate."""
        ch = Channel(env)
        done = []

        def proc(env, ch):
            res = ch.reserve(1000, 1000.0, preemptible=True)
            yield env.timeout(0.5)        # 500 bytes clocked out
            moved = ch.preempt(100.0)     # 10x slower for the rest
            assert moved == 1
            yield res
            done.append(env.now)

        env.run(until=env.process(proc(env, ch)))
        # 0.5s for the first 500 B, then 500 B at 100 B/s = 5s.
        assert done == [pytest.approx(5.5)]
        assert ch.busy_until == pytest.approx(5.5)

    def test_preempt_rechains_queued_reservations(self, env):
        ch = Channel(env)
        ends = []

        def proc(env, ch):
            first = ch.reserve(1000, 1000.0, preemptible=True)
            second = ch.reserve(1000, 1000.0, preemptible=True)
            yield env.timeout(0.5)
            ch.preempt(500.0)
            yield first
            ends.append(env.now)
            yield second
            ends.append(env.now)

        env.run(until=env.process(proc(env, ch)))
        # first: 0.5 + 500/500 = 1.5; second starts at 1.5, takes 2s.
        assert ends == [pytest.approx(1.5), pytest.approx(3.5)]

    def test_preempt_callable_selects_reservations(self, env):
        ch = Channel(env)
        ends = {}

        def proc(env, ch):
            keep = ch.reserve(1000, 1000.0, preemptible=True, tag="keep")
            slow = ch.reserve(1000, 1000.0, preemptible=True, tag="slow")
            moved = ch.preempt(
                lambda res: 500.0 if res.tag == "slow" else None
            )
            assert moved == 1
            yield keep
            ends["keep"] = env.now
            yield slow
            ends["slow"] = env.now

        env.run(until=env.process(proc(env, ch)))
        assert ends["keep"] == pytest.approx(1.0)
        assert ends["slow"] == pytest.approx(3.0)  # starts at 1.0, 2s at 500 B/s

    def test_preempt_skips_non_preemptible(self, env):
        ch = Channel(env)

        def proc(env, ch):
            res = ch.reserve(1000, 1000.0)  # immutable
            assert ch.preempt(1.0) == 0
            yield res
            assert env.now == pytest.approx(1.0)

        env.run(until=env.process(proc(env, ch)))

    def test_stale_fire_token_is_inert(self, env):
        """A re-quote strands the old completion event; firing it must
        not complete the reservation early."""
        ch = Channel(env)
        done = []

        def proc(env, ch):
            res = ch.reserve(1000, 1000.0, preemptible=True)
            ch.preempt(100.0)             # moves completion to t=10
            yield res
            done.append(env.now)

        env.run(until=env.process(proc(env, ch)))
        assert done == [pytest.approx(10.0)]
