"""Unit tests for the environment's run loop semantics."""

import pytest

from repro.sim import EmptySchedule, Environment


@pytest.fixture()
def env():
    return Environment()


class TestClock:
    def test_initial_time(self):
        assert Environment().now == 0.0
        assert Environment(initial_time=10).now == 10.0

    def test_run_until_time_pins_clock(self, env):
        env.process(self._tick(env, 1))
        env.run(until=100)
        assert env.now == 100

    @staticmethod
    def _tick(env, delay):
        yield env.timeout(delay)

    def test_run_until_past_raises(self, env):
        env.run(until=5)
        with pytest.raises(ValueError):
            env.run(until=1)

    def test_peek_empty_is_inf(self, env):
        assert env.peek() == float("inf")

    def test_peek_returns_next_event_time(self, env):
        env.timeout(7)
        assert env.peek() == 7

    def test_step_empty_raises(self, env):
        with pytest.raises(EmptySchedule):
            env.step()

    def test_len_counts_scheduled(self, env):
        env.timeout(1)
        env.timeout(2)
        assert len(env) == 2


class TestRunUntilEvent:
    def test_returns_event_value(self, env):
        def proc(env):
            yield env.timeout(4)
            return {"done": True}

        assert env.run(until=env.process(proc(env))) == {"done": True}
        assert env.now == 4

    def test_reraises_event_failure(self, env):
        def proc(env):
            yield env.timeout(1)
            raise OSError("disk on fire")

        with pytest.raises(OSError, match="disk on fire"):
            env.run(until=env.process(proc(env)))

    def test_already_processed_until_event(self, env):
        t = env.timeout(1, value="v")
        env.run(until=2)
        assert env.run(until=t) == "v"

    def test_schedule_dry_before_until_event(self, env):
        ev = env.event()  # never triggered
        env.timeout(1)
        with pytest.raises(RuntimeError, match="ran dry"):
            env.run(until=ev)

    def test_remaining_events_continue_after_partial_run(self, env):
        log = []

        def proc(env, delay, tag):
            yield env.timeout(delay)
            log.append(tag)

        env.process(proc(env, 1, "a"))
        env.process(proc(env, 10, "b"))
        env.run(until=5)
        assert log == ["a"]
        env.run()
        assert log == ["a", "b"]


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build_and_run():
            env = Environment()
            trace = []

            def worker(env, wid):
                for i in range(5):
                    yield env.timeout(0.5 + (wid * 0.1))
                    trace.append((round(env.now, 6), wid, i))

            for wid in range(4):
                env.process(worker(env, wid))
            env.run()
            return trace

        assert build_and_run() == build_and_run()
