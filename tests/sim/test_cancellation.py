"""Lazy event cancellation: tombstones, compaction, and abandoned timers."""

import pytest

from repro.sim import Environment, Interrupt
from repro.sim.events import race


@pytest.fixture()
def env():
    return Environment()


class TestCancelSemantics:
    def test_cancelled_timer_never_fires(self, env):
        fired = []
        t = env.timeout(5)
        assert t.callbacks is not None
        t.callbacks.append(lambda e: fired.append(env.now))
        t.cancel()
        env.run()
        assert fired == []

    def test_skip_does_not_advance_clock_or_count(self, env):
        env.timeout(1)
        late = env.timeout(9)
        late.cancel()
        env.run()
        # The cancelled timer at t=9 must leave no trace: the clock stays
        # at the last live event and the processed count excludes it.
        assert env.now == 1
        assert env.events_processed == 1

    def test_cancel_is_idempotent(self, env):
        t = env.timeout(1)
        t.cancel()
        t.cancel()  # no-op
        assert t.cancelled
        env.run()

    def test_cancel_processed_event_is_noop(self, env):
        t = env.timeout(1)
        env.run()
        t.cancel()
        assert not t.cancelled

    def test_cancel_untriggered_event_raises(self, env):
        with pytest.raises(RuntimeError, match="untriggered"):
            env.event().cancel()

    def test_cancel_failed_event_raises(self, env):
        ev = env.event()
        ev.fail(RuntimeError("boom"))
        ev.defuse()
        with pytest.raises(RuntimeError, match="failed"):
            ev.cancel()

    def test_len_and_peek_exclude_tombstones(self, env):
        first = env.timeout(1)
        env.timeout(2)
        assert len(env) == 2
        first.cancel()
        assert len(env) == 1
        assert env.peek() == 2

    def test_race_loser_can_be_cancelled(self, env):
        def proc(env):
            winner = env.timeout(1)
            loser = env.timeout(100)
            yield race(env, winner, loser)
            loser.cancel()
            return env.now

        assert env.run(until=env.process(proc(env))) == 1
        env.run()
        assert env.now == 1  # the loser never advanced the clock


class TestCompaction:
    def test_compaction_drops_tombstones_and_preserves_order(self, env):
        threshold = Environment.COMPACT_MIN_TOMBSTONES
        keep = [env.timeout(i + 0.5) for i in range(5)]
        doomed = [env.timeout(1000 + i) for i in range(2 * threshold)]
        for t in doomed:
            t.cancel()
        # Tombstones dominated the queue at some point, so the heap must
        # have compacted at least once — the raw queue is strictly smaller
        # than everything ever scheduled, while the live count is exact.
        assert len(env._queue) < len(keep) + len(doomed)
        assert len(env) == len(keep)
        order = []
        while len(env):
            env.step()
            order.append(env.now)
        assert order == [0.5, 1.5, 2.5, 3.5, 4.5]

    def test_no_compaction_below_minimum(self, env):
        env.timeout(1)
        doomed = env.timeout(2)
        doomed.cancel()
        # One tombstone is half the queue but far below the floor.
        assert env._tombstones == 1
        assert len(env._queue) == 2


class TestAbandonedTimers:
    def test_interrupt_cancels_sole_subscriber_timeout(self, env):
        def sleeper(env):
            try:
                yield env.timeout(1000)
            except Interrupt:
                pass

        def interrupter(env, victim):
            yield env.timeout(1)
            victim.interrupt("done")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        # The abandoned 1000 s timer must not keep the clock running.
        assert env.now == 1

    def test_interrupt_keeps_shared_timeout_alive(self, env):
        arrivals = []

        def waiter(env, shared):
            try:
                yield shared
            except Interrupt:
                return
            arrivals.append(env.now)

        shared = env.timeout(10)
        victim = env.process(waiter(env, shared))
        env.process(waiter(env, shared))

        def interrupter(env):
            yield env.timeout(1)
            victim.interrupt()

        env.process(interrupter(env))
        env.run()
        # The second waiter still depends on the timer: it must fire.
        assert arrivals == [10]
        assert env.now == 10

    def test_heap_stays_small_after_many_interrupted_sleepers(self, env):
        def heartbeat(env):
            try:
                while True:
                    yield env.timeout(3.0)
            except Interrupt:
                return

        def driver(env):
            for _ in range(100):
                p = env.process(heartbeat(env))
                yield env.timeout(0.01)
                p.interrupt("owner finished")

        env.run(until=env.process(driver(env)))
        # Every heartbeat left a pending 3 s timer when interrupted; with
        # cancellation they are tombstoned (and compacted), so the live
        # schedule does not grow with the number of abandoned timers —
        # only the final heartbeat's own completion event may remain.
        assert len(env) <= 1
        env.run()
        assert len(env) == 0
        # Running dry never reached any abandoned 3 s timer.
        assert env.now < 3.0
