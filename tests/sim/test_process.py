"""Unit tests for processes: lifecycle, return values, interrupts."""

import pytest

from repro.sim import Environment, Interrupt


@pytest.fixture()
def env():
    return Environment()


class TestLifecycle:
    def test_process_requires_generator(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_process_return_value(self, env):
        def proc(env):
            yield env.timeout(1)
            return "result"

        p = env.process(proc(env))
        value = env.run(until=p)
        assert value == "result"

    def test_process_is_alive_until_done(self, env):
        def proc(env):
            yield env.timeout(5)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_waiting_on_another_process(self, env):
        log = []

        def child(env):
            yield env.timeout(2)
            log.append(("child", env.now))
            return 99

        def parent(env):
            value = yield env.process(child(env))
            log.append(("parent", env.now, value))

        env.process(parent(env))
        env.run()
        assert log == [("child", 2), ("parent", 2, 99)]

    def test_exception_propagates_to_waiter(self, env):
        def child(env):
            yield env.timeout(1)
            raise KeyError("child failed")

        def parent(env):
            with pytest.raises(KeyError):
                yield env.process(child(env))
            return "handled"

        p = env.process(parent(env))
        assert env.run(until=p) == "handled"

    def test_unhandled_process_exception_crashes_run(self, env):
        def proc(env):
            yield env.timeout(1)
            raise RuntimeError("nobody catches this")

        env.process(proc(env))
        with pytest.raises(RuntimeError, match="nobody catches"):
            env.run()

    def test_yield_non_event_is_error(self, env):
        def proc(env):
            yield 42

        env.process(proc(env))
        with pytest.raises(RuntimeError, match="non-event"):
            env.run()

    def test_process_starts_at_creation_time_not_synchronously(self, env):
        log = []

        def proc(env):
            log.append("started")
            yield env.timeout(0)

        env.process(proc(env))
        assert log == []  # not started until the event loop runs
        env.run()
        assert log == ["started"]

    def test_yielding_already_processed_event_continues(self, env):
        ev = env.timeout(0, value="x")
        env.run(until=0.5)
        assert ev.processed

        def proc(env):
            value = yield ev
            return value

        p = env.process(proc(env))
        assert env.run(until=p) == "x"


class TestInterrupts:
    def test_interrupt_delivers_cause(self, env):
        causes = []

        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt as intr:
                causes.append((env.now, intr.cause))

        def attacker(env, victim_proc):
            yield env.timeout(3)
            victim_proc.interrupt("dn3 died")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert causes == [(3, "dn3 died")]

    def test_interrupted_process_can_continue(self, env):
        log = []

        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                pass
            yield env.timeout(5)
            log.append(env.now)

        def attacker(env, v):
            yield env.timeout(2)
            v.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert log == [7]

    def test_original_target_does_not_resume_twice(self, env):
        resumes = []

        def victim(env):
            try:
                yield env.timeout(10)
                resumes.append("timeout")
            except Interrupt:
                resumes.append("interrupt")
            yield env.timeout(50)
            resumes.append("second wait done")

        def attacker(env, v):
            yield env.timeout(1)
            v.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        # The original 10s timeout must NOT wake the victim again at t=10.
        assert resumes == ["interrupt", "second wait done"]

    def test_interrupt_finished_process_raises(self, env):
        def quick(env):
            yield env.timeout(1)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(RuntimeError):
            p.interrupt()

    def test_self_interrupt_rejected(self, env):
        def proc(env):
            yield env.timeout(0)
            env.active_process.interrupt()

        env.process(proc(env))
        with pytest.raises(RuntimeError, match="cannot interrupt itself"):
            env.run()

    def test_unhandled_interrupt_propagates(self, env):
        def victim(env):
            yield env.timeout(100)

        def attacker(env, v):
            yield env.timeout(1)
            v.interrupt("fatal")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        with pytest.raises(Interrupt):
            env.run()

    def test_multiple_interrupts_queue(self, env):
        causes = []

        def victim(env):
            for _ in range(2):
                try:
                    yield env.timeout(100)
                except Interrupt as intr:
                    causes.append(intr.cause)

        def attacker(env, v):
            yield env.timeout(1)
            v.interrupt("first")
            v.interrupt("second")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run(until=50)
        assert causes == ["first", "second"]
