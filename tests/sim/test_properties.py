"""Property-based tests for the simulation kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Resource, Store


@given(delays=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
@settings(max_examples=200, deadline=None)
def test_clock_is_monotonic_over_arbitrary_timeouts(delays):
    """The clock never goes backwards, whatever the schedule looks like."""
    env = Environment()
    observed = []

    def waiter(env, delay):
        yield env.timeout(delay)
        observed.append(env.now)

    for delay in delays:
        env.process(waiter(env, delay))
    env.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@given(
    holds=st.lists(
        st.floats(min_value=0.001, max_value=10), min_size=1, max_size=30
    ),
    capacity=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=100, deadline=None)
def test_resource_never_exceeds_capacity(holds, capacity):
    """At no instant do more than ``capacity`` processes hold the resource."""
    env = Environment()
    res = Resource(env, capacity=capacity)
    concurrent = 0
    max_concurrent = 0

    def user(env, res, hold):
        nonlocal concurrent, max_concurrent
        with res.request() as req:
            yield req
            concurrent += 1
            max_concurrent = max(max_concurrent, concurrent)
            yield env.timeout(hold)
            concurrent -= 1

    for hold in holds:
        env.process(user(env, res, hold))
    env.run()
    assert concurrent == 0
    assert max_concurrent <= capacity


@given(
    items=st.lists(st.integers(), min_size=0, max_size=100),
    capacity=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=100, deadline=None)
def test_store_conserves_and_orders_items(items, capacity):
    """Everything put into a bounded store comes out, once, in FIFO order."""
    env = Environment()
    store = Store(env, capacity=capacity)
    got = []

    def producer(env, store):
        for item in items:
            yield store.put(item)

    def consumer(env, store):
        for _ in range(len(items)):
            value = yield store.get()
            got.append(value)

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert got == items
    assert len(store) == 0


@given(
    n_users=st.integers(min_value=1, max_value=20),
    hold=st.floats(min_value=0.01, max_value=5),
)
@settings(max_examples=50, deadline=None)
def test_serialized_resource_total_time_is_sum_of_holds(n_users, hold):
    """A capacity-1 resource serializes perfectly: makespan = n * hold.

    This is the property the NIC model relies on for bandwidth computation.
    """
    env = Environment()
    res = Resource(env, capacity=1)

    def user(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(hold)

    procs = [env.process(user(env, res)) for _ in range(n_users)]
    env.run(until=env.all_of(procs))
    assert abs(env.now - n_users * hold) < 1e-9 * max(1.0, n_users * hold)


@given(seed_delays=st.lists(st.floats(min_value=0, max_value=100), min_size=2, max_size=20))
@settings(max_examples=50, deadline=None)
def test_simultaneous_events_preserve_creation_order(seed_delays):
    """Events scheduled for the same instant fire in scheduling order."""
    env = Environment()
    fired = []
    t = max(seed_delays)  # everything rescheduled to one instant

    def waiter(env, idx):
        yield env.timeout(t)
        fired.append(idx)

    for idx in range(len(seed_delays)):
        env.process(waiter(env, idx))
    env.run()
    assert fired == list(range(len(seed_delays)))
