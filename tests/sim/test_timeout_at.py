"""Edge cases of :meth:`Environment.timeout_at`.

The packet-train conductor leans on two corners of the absolute-time
timeout that the relative :meth:`Environment.timeout` never exercises:
scheduling at *exactly* ``now`` (a train milestone can fall on the
current instant after a replay), and the ordering of a ``timeout_at``
event against URGENT events queued for the same timestamp (a train
abort must beat a milestone firing at the kill instant).
"""

import pytest

from repro.sim import Environment, Interrupt, ProcessGenerator


class TestExactNow:
    def test_timeout_at_now_is_allowed(self):
        env = Environment()
        env.run(until=env.timeout(5.0))
        event = env.timeout_at(env.now)
        assert event.triggered  # pre-succeeded, waiting in the queue
        env.run(until=event)
        assert env.now == 5.0

    def test_timeout_at_now_resumes_in_same_instant(self):
        env = Environment()
        seen = []

        def proc(env: Environment) -> ProcessGenerator:
            yield env.timeout(1.0)
            yield env.timeout_at(env.now)
            seen.append(env.now)

        env.process(proc(env))
        env.run()
        assert seen == [1.0]

    def test_timeout_at_past_raises(self):
        env = Environment()
        env.run(until=env.timeout(2.0))
        with pytest.raises(ValueError):
            env.timeout_at(1.999)

    def test_timeout_at_now_orders_after_earlier_same_time_events(self):
        """Two timeout_at events at one instant fire in creation order."""
        env = Environment()
        order = []

        def waiter(env: Environment, event, tag: str) -> ProcessGenerator:
            yield event
            order.append(tag)

        first = env.timeout_at(3.0)
        second = env.timeout_at(3.0)
        env.process(waiter(env, first, "first"))
        env.process(waiter(env, second, "second"))
        env.run()
        assert order == ["first", "second"]


class TestUrgentOrdering:
    def test_interrupt_beats_timeout_at_scheduled_same_instant(self):
        """An URGENT interrupt lands before a NORMAL timeout at the same
        timestamp, even though the timeout entered the heap much earlier.

        This is the ordering the train's error settle relies on: the
        conductor parked on a milestone ``timeout_at(T)`` must observe an
        interrupt/abort issued at ``T`` before the milestone fires.
        """
        env = Environment()
        log = []
        trigger = env.timeout_at(4.0)  # older eid: pops first at t=4.0

        def sleeper(env: Environment) -> ProcessGenerator:
            try:
                yield env.timeout_at(4.0)  # younger eid, same instant
                log.append("timeout")
            except Interrupt:
                log.append("interrupted")

        def killer(env: Environment, victim) -> ProcessGenerator:
            yield trigger
            victim.interrupt("same-instant kill")

        victim = env.process(sleeper(env))
        env.process(killer(env, victim))
        env.run()
        # At t=4.0 the killer's trigger pops first (older eid) and issues
        # the interrupt; URGENT priority puts it ahead of the sleeper's
        # NORMAL timeout still queued for the same instant, so the
        # sleeper never sees its own timeout fire.
        assert log == ["interrupted"]

    def test_urgent_preempts_normal_queued_first_at_same_time(self):
        """URGENT priority outranks eid order within one timestamp."""
        from repro.sim.environment import URGENT
        from repro.sim.events import Event

        env = Environment()
        order = []

        def watch(tag: str):
            def callback(_event) -> None:
                order.append(tag)

            return callback

        normal = Event(env)
        normal._ok = True
        normal._value = None
        normal.callbacks.append(watch("normal"))
        env.schedule_at(normal, 1.0)  # queued first (older eid)

        urgent = Event(env)
        urgent._ok = True
        urgent._value = None
        urgent.callbacks.append(watch("urgent"))
        env.schedule_at(urgent, 1.0, priority=URGENT)  # queued second

        env.run()
        assert order == ["urgent", "normal"]

    def test_timeout_at_value_passthrough(self):
        env = Environment()
        collected = []

        def proc(env: Environment) -> ProcessGenerator:
            value = yield env.timeout_at(2.5, value="payload")
            collected.append((env.now, value))

        env.process(proc(env))
        env.run()
        assert collected == [(2.5, "payload")]
