"""Property tests: the vectorized batch kernel is bit-identical to scalar.

Every helper in :mod:`repro.sim.batch` claims exact equality with its
scalar reference — not closeness — because the batched completion path
feeds these values back into event timestamps that golden tests compare
byte-for-byte.  Hypothesis drives each helper against an independently
written scalar loop over random inputs straddling the ``_MIN_VECTOR``
branch point, and every assertion is ``==`` on floats, never ``approx``.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.throttle import (
    NodeThrottle,
    PairThrottle,
    RackBoundaryThrottle,
    ThrottleRule,
    ThrottleTable,
)
from repro.sim.batch import (
    HAVE_NUMPY,
    buffered_high_water,
    count_before,
    count_at_or_before,
    effective_rates,
)

#: Sizes straddle the kernel's scalar/vector branch point (8).
finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e9, max_value=1e9
)
sorted_values = st.lists(finite, min_size=0, max_size=40).map(sorted)


def test_numpy_is_available():
    """The container ships numpy; if this ever fails the vector branch
    is silently dead and the suite below only tests scalar-vs-scalar."""
    assert HAVE_NUMPY


@given(values=sorted_values, t=finite)
def test_count_before_matches_linear_scan(values, t):
    assert count_before(values, t) == sum(1 for v in values if v < t)


@given(values=sorted_values, t=finite)
def test_count_at_or_before_matches_linear_scan(values, t):
    assert count_at_or_before(values, t) == sum(1 for v in values if v <= t)


@given(values=sorted_values, index=st.integers(min_value=0, max_value=39))
def test_counts_at_exact_element_boundaries(values, index):
    """Ties are where left/right bisects diverge — probe actual elements."""
    if not values:
        return
    t = values[index % len(values)]
    assert count_before(values, t) == sum(1 for v in values if v < t)
    assert count_at_or_before(values, t) == sum(1 for v in values if v <= t)


def _scalar_high_water(grants, releases, cap, rows, high):
    from bisect import bisect_left

    for k in range(rows):
        occ = k + 1 - bisect_left(releases, grants[k])
        if occ > cap:
            occ = cap
        if occ > high:
            high = occ
    return high


@given(
    grants=st.lists(finite, min_size=0, max_size=40).map(sorted),
    releases=st.lists(finite, min_size=0, max_size=40).map(sorted),
    cap=st.integers(min_value=1, max_value=20),
    high=st.integers(min_value=0, max_value=20),
    data=st.data(),
)
def test_buffered_high_water_matches_scalar(grants, releases, cap, high, data):
    rows = data.draw(st.integers(min_value=0, max_value=len(grants)))
    assert buffered_high_water(grants, releases, cap, rows, high) == (
        _scalar_high_water(grants, releases, cap, rows, high)
    )


# -- effective_rates ------------------------------------------------------


@dataclass
class _FakeNIC:
    rate: float


@dataclass
class _FakeNode:
    """The three attributes ``effective_rates`` reads off a node."""

    name: str
    rack: str
    nic: _FakeNIC


class _OddNodeThrottle(ThrottleRule):
    """A rule type the kernel does not special-case, to exercise the
    pairwise ``applies`` fallback mask."""

    def applies(self, src, dst):
        return (len(src.name) + len(dst.name)) % 2 == 1


node_pool = st.lists(
    st.builds(
        _FakeNode,
        name=st.sampled_from(["a", "b", "cc", "dd", "e", "f", "gg", "h"]),
        rack=st.sampled_from(["r0", "r1"]),
        nic=st.builds(
            _FakeNIC, rate=st.floats(min_value=1.0, max_value=1e9)
        ),
    ),
    min_size=1,
    max_size=8,
)

rate = st.floats(min_value=1.0, max_value=1e9)
rule = st.one_of(
    st.builds(
        NodeThrottle,
        node_name=st.sampled_from(["a", "b", "cc", "nobody"]),
        rate=rate,
    ),
    st.builds(
        PairThrottle,
        src_name=st.sampled_from(["a", "cc", "e"]),
        dst_name=st.sampled_from(["b", "dd", "f"]),
        rate=rate,
    ),
    st.builds(RackBoundaryThrottle, rate=rate),
    st.builds(_OddNodeThrottle, rate=rate),
)


@settings(max_examples=200)
@given(
    nodes=node_pool,
    rules=st.lists(rule, min_size=0, max_size=5),
    data=st.data(),
)
def test_effective_rates_matches_scalar(nodes, rules, data):
    n_pairs = data.draw(st.integers(min_value=0, max_value=20))
    pairs = [
        (
            nodes[data.draw(st.integers(0, len(nodes) - 1))],
            nodes[data.draw(st.integers(0, len(nodes) - 1))],
        )
        for _ in range(n_pairs)
    ]
    table = ThrottleTable(list(rules))
    batch = effective_rates(table, pairs)
    scalar = [table.effective_rate(src, dst) for src, dst in pairs]
    assert batch == scalar  # exact float equality, element by element
    assert all(isinstance(value, float) for value in batch)


def test_throttle_table_batch_method_delegates():
    """``ThrottleTable.effective_rates`` is the surface the network's
    re-quote pass calls; pin it to the kernel over the vector branch."""
    nodes = [
        _FakeNode(f"n{i}", f"r{i % 2}", _FakeNIC(100.0 + i)) for i in range(10)
    ]
    table = ThrottleTable([NodeThrottle("n3", 7.0), RackBoundaryThrottle(55.0)])
    pairs = [(nodes[i], nodes[(i + 3) % 10]) for i in range(10)]
    assert table.effective_rates(pairs) == [
        table.effective_rate(src, dst) for src, dst in pairs
    ]


@pytest.mark.parametrize("size", [7, 8, 9])
def test_vector_branch_point_is_seamless(size):
    """Straddle ``_MIN_VECTOR`` explicitly: 7 runs scalar, 8+ vectorized."""
    values = [float(i) * 0.5 for i in range(size)]
    for t in (-1.0, 0.0, 1.25, values[-1], 1e9):
        assert count_before(values, t) == sum(1 for v in values if v < t)
        assert count_at_or_before(values, t) == sum(
            1 for v in values if v <= t
        )
