"""ShardedEnvironment: deterministic merge, affinity, windows, causality."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SimulationConfig
from repro.sim import (
    CausalityError,
    EmptySchedule,
    Environment,
    ShardedEnvironment,
    lookahead_from_config,
)


def mixed_workload(env, log, n=24):
    """Timeouts, zero-delay chains, races-by-cancel — a bit of everything."""

    def worker(env, tag, delay):
        yield env.timeout(delay)
        log.append(("worker", tag, env.now))
        yield env.timeout(0)
        log.append(("again", tag, env.now))

    def canceller(env):
        timers = [env.timeout(5.0 + i) for i in range(80)]
        yield env.timeout(0.5)
        for timer in timers:
            timer.cancel()
        log.append(("cancelled", env.now))

    for i in range(n):
        env.process(worker(env, i, (i * 13 % 7) * 0.25))
    env.process(canceller(env))


class TestDeterministicMerge:
    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 8])
    def test_identical_to_single_heap(self, shards):
        """Any shard count dispatches the exact single-heap sequence."""
        ref_log = []
        ref = Environment()
        mixed_workload(ref, ref_log)
        ref.run()

        log = []
        env = ShardedEnvironment(shards=shards)
        for shard in range(shards):
            with env.pinned(shard):
                pass  # pinning context itself must be harmless
        mixed_workload(env, log)
        env.run()

        assert log == ref_log
        assert env.now == ref.now
        assert env.events_processed == ref.events_processed

    def test_pinned_workload_still_identical(self):
        """Distributing processes over shards must not move the timeline."""
        ref_log = []
        ref = Environment()
        mixed_workload(ref, ref_log)
        ref.run()

        log = []
        env = ShardedEnvironment(shards=4)

        def worker(env, tag, delay):
            yield env.timeout(delay)
            log.append(("worker", tag, env.now))
            yield env.timeout(0)
            log.append(("again", tag, env.now))

        def canceller(env):
            timers = [env.timeout(5.0 + i) for i in range(80)]
            yield env.timeout(0.5)
            for timer in timers:
                timer.cancel()
            log.append(("cancelled", env.now))

        for i in range(24):
            with env.pinned(i % 4):
                env.process(worker(env, i, (i * 13 % 7) * 0.25))
        with env.pinned(3):
            env.process(canceller(env))
        env.run()

        assert log == ref_log
        stats = env.shard_stats()
        assert sum(s["events_dispatched"] for s in stats) == env.events_processed
        # The pinned split actually spread load across the shards.
        assert sum(1 for s in stats if s["events_dispatched"]) == 4

    def test_run_until_time_and_event(self):
        env = ShardedEnvironment(shards=3)
        log = []

        def proc(env):
            yield env.timeout(2.0)
            log.append(env.now)
            return "done"

        with env.pinned(2):
            p = env.process(proc(env))
        assert env.run(until=p) == "done"
        assert log == [2.0]
        env2 = ShardedEnvironment(shards=2)
        env2.timeout(5.0)
        env2.run(until=1.5)
        assert env2.now == 1.5

    def test_empty_schedule_raises(self):
        env = ShardedEnvironment(shards=2)
        with pytest.raises(EmptySchedule):
            env.step()
        assert env.peek() == float("inf")
        assert len(env) == 0


class TestAffinityAndStats:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ShardedEnvironment(shards=0)
        with pytest.raises(ValueError):
            ShardedEnvironment(shards=2, lookahead=-1.0)

    def test_pinned_validation_and_restore(self):
        env = ShardedEnvironment(shards=2)
        with pytest.raises(ValueError):
            with env.pinned(2):
                pass
        with env.pinned(1):
            assert env.current_shard == 1
        assert env.current_shard == 0

    def test_events_inherit_creation_shard(self):
        env = ShardedEnvironment(shards=4)
        with env.pinned(3):
            timer = env.timeout(1.0)
        assert timer._shard == 3
        env.run()
        assert env.shard_stats()[3]["events_dispatched"] == 1
        assert env.shard_stats()[0]["events_dispatched"] == 0

    def test_inter_shard_messages_counted(self):
        env = ShardedEnvironment(shards=2)
        with env.pinned(1):
            inbox = env.event()  # owned by shard 1

        def sender(env):
            yield env.timeout(1.0)
            inbox.succeed("ping")  # scheduled from shard 0's context

        def receiver(env):
            got = yield inbox
            return got

        env.process(sender(env))
        with env.pinned(1):
            p = env.process(receiver(env))
        assert env.run(until=p) == "ping"
        assert env.inter_shard_messages >= 1

    def test_health_includes_shard_balance(self):
        env = ShardedEnvironment(shards=2)
        with env.pinned(1):
            env.timeout(1.0)
        env.timeout(2.0)
        env.run()
        health = env.health()
        assert health["shards"] == 2
        assert health["shard_events"] == [1, 1]
        assert health["shard_imbalance"] == 1.0
        assert health["events_dispatched"] == 2
        assert set(
            ["tombstones_skipped", "compactions_run", "heap_high_water"]
        ) <= set(health)

    def test_tombstones_and_compaction_across_shards(self):
        env = ShardedEnvironment(shards=4)
        doomed = []
        for i in range(Environment.COMPACT_MIN_TOMBSTONES):
            with env.pinned(i % 4):
                doomed.append(env.timeout(10.0 + i))
        for timer in doomed:
            timer.cancel()
        # All entries were tombstones: the threshold compaction emptied
        # every shard heap in one pass.
        assert env.compactions_run == 1
        assert len(env) == 0
        assert env.peek() == float("inf")


class TestConservativeWindows:
    def test_requires_positive_lookahead(self):
        env = ShardedEnvironment(shards=2)
        with pytest.raises(ValueError, match="lookahead"):
            env.run_windows()

    def test_partitioned_workload_matches_reference(self):
        """Independent per-shard processes produce the reference outcome."""
        ref = Environment()
        ref_log = []

        def worker(env, log, tag, period):
            for _ in range(4):
                yield env.timeout(period)
                log.append((tag, round(env.now, 9)))

        for i in range(6):
            ref.process(worker(ref, ref_log, i, 0.3 + 0.1 * i))
        ref.run()

        env = ShardedEnvironment(shards=3, lookahead=0.05)
        log = []
        for i in range(6):
            with env.pinned(i % 3):
                env.process(worker(env, log, i, 0.3 + 0.1 * i))
        env.run_windows()
        # Windowed execution interleaves differently but every (tag, time)
        # observation — each shard's local history — is identical.
        assert sorted(log) == sorted(ref_log)
        assert env.window_barriers > 1
        assert env.events_processed == ref.events_processed

    def test_run_windows_until_pins_clock(self):
        env = ShardedEnvironment(shards=2, lookahead=0.1)
        fired = []
        with env.pinned(1):
            timer = env.timeout(1.0)
            timer.callbacks.append(lambda ev: fired.append(env.now))
        env.timeout(5.0)  # beyond the limit; must stay pending
        env.run_windows(until=2.0)
        assert fired == [1.0]
        assert env.now == 2.0

    def test_cross_shard_message_into_open_window_raises(self):
        """A same-instant cross-shard send violates the lookahead contract."""
        env = ShardedEnvironment(shards=2, lookahead=0.5)
        with env.pinned(1):
            inbox = env.event()

        def sender(env):
            yield env.timeout(1.0)
            inbox.succeed("too fast")  # lands inside the open window

        env.process(sender(env))
        with pytest.raises(CausalityError):
            env.run_windows()

    def test_cross_shard_beyond_window_is_legal(self):
        """schedule_at past the window end is a legal inter-shard message."""
        env = ShardedEnvironment(shards=2, lookahead=0.5)
        got = []
        with env.pinned(1):
            inbox = env.event()
            inbox._ok = True
            inbox._value = "mail"
            inbox.callbacks.append(lambda ev: got.append(env.now))

        def sender(env):
            yield env.timeout(1.0)
            env.schedule_at(inbox, env.now + 2.0)  # well past the window

        env.process(sender(env))
        env.run_windows()
        assert got == [3.0]
        assert env.inter_shard_messages == 1


class TestThreadedWindows:
    """run_windows(workers=N): thread-pool shard drains, barrier-merged.

    Every test pits the threaded path against the sequential windowed
    path (workers=None), which the conservative-window suite above has
    already pinned against the single-heap reference.
    """

    @staticmethod
    def _partitioned(workers):
        env = ShardedEnvironment(shards=3, lookahead=0.05)
        log = []

        def worker(env, log, tag, period):
            for _ in range(4):
                yield env.timeout(period)
                log.append((tag, round(env.now, 9)))

        for i in range(6):
            with env.pinned(i % 3):
                env.process(worker(env, log, i, 0.3 + 0.1 * i))
        env.run_windows(workers=workers)
        return log, env

    def test_threaded_matches_sequential(self):
        seq_log, seq_env = self._partitioned(None)
        for workers in (2, 3):
            log, env = self._partitioned(workers)
            assert sorted(log) == sorted(seq_log)
            assert env.events_processed == seq_env.events_processed
            assert env.window_barriers == seq_env.window_barriers
            assert env.window_events == seq_env.window_events

    def test_threaded_run_twice_identical(self):
        first_log, first_env = self._partitioned(2)
        second_log, second_env = self._partitioned(2)
        assert first_log == second_log
        assert first_env.events_processed == second_env.events_processed
        assert first_env.shard_stats() == second_env.shard_stats()

    def test_workers_recorded_and_clamped(self):
        _log, env = self._partitioned(16)  # clamped to the 3 shards
        assert env.window_workers == 3
        assert env.health()["window_workers"] == 3
        assert env.window_batch_max >= 1
        assert env.health()["window_batch_mean"] > 0

    def test_invalid_workers(self):
        env = ShardedEnvironment(shards=2, lookahead=0.5)
        with pytest.raises(ValueError, match="workers"):
            env.run_windows(workers=0)

    def test_until_pins_clock_threaded(self):
        env = ShardedEnvironment(shards=2, lookahead=0.1)
        fired = []
        with env.pinned(1):
            timer = env.timeout(1.0)
            timer.callbacks.append(lambda ev: fired.append(env.now))
        env.timeout(5.0)  # beyond the limit; must stay pending
        env.run_windows(until=2.0, workers=2)
        assert fired == [1.0]
        assert env.now == 2.0
        assert len(env) == 1

    def test_causality_error_propagates_from_worker(self):
        env = ShardedEnvironment(shards=2, lookahead=0.5)
        with env.pinned(1):
            inbox = env.event()

        def sender(env):
            yield env.timeout(1.0)
            inbox.succeed("too fast")  # lands inside the open window

        env.process(sender(env))
        with pytest.raises(CausalityError):
            env.run_windows(workers=2)

    def test_cross_shard_outbox_lands_at_barrier(self):
        """A beyond-window cross-shard send defers to the worker's outbox
        and lands on the target heap at the barrier."""
        env = ShardedEnvironment(shards=2, lookahead=0.5)
        got = []
        with env.pinned(1):
            inbox = env.event()
            inbox._ok = True
            inbox._value = "mail"
            inbox.callbacks.append(lambda ev: got.append(env.now))

        def sender(env):
            yield env.timeout(1.0)
            env.schedule_at(inbox, env.now + 2.0)  # well past the window

        env.process(sender(env))
        env.run_windows(workers=2)
        assert got == [3.0]
        assert env.inter_shard_messages == 1

    def test_threaded_cancellation_defers_compaction(self):
        """Timers cancelled inside a threaded window merge into the
        tombstone count at the barrier instead of compacting mid-drain."""
        env = ShardedEnvironment(shards=2, lookahead=0.5)
        doomed = []
        for i in range(4):
            with env.pinned(i % 2):
                doomed.append(env.timeout(50.0 + i))

        def canceller(env):
            yield env.timeout(1.0)
            for timer in doomed:
                timer.cancel()

        env.process(canceller(env))
        env.run_windows(until=2.0, workers=2)
        assert len(env) == 0  # only tombstones remain live-wise
        assert env.peek() == float("inf")


def test_lookahead_from_config_is_min_latency():
    config = SimulationConfig()
    assert lookahead_from_config(config) == min(
        config.network.link_latency, config.network.control_latency
    )


@given(
    spec=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # shard
            st.floats(min_value=0.0, max_value=10.0),  # delay
            st.booleans(),  # cancelled later?
        ),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=100, deadline=None)
def test_sharded_matches_single_heap_under_random_cancellation(spec):
    """Random schedules + cancellations: sharded == single-heap, always."""

    def build(env, pin):
        timers = []
        for index, (shard, delay, _cancel) in enumerate(spec):
            if pin:
                with env.pinned(shard):
                    timers.append(env.timeout(delay, value=index))
            else:
                timers.append(env.timeout(delay, value=index))
        return timers

    def drive(env, timers):
        log = []
        for timer, (_shard, _delay, cancel) in zip(timers, spec):
            if cancel:
                timer.cancel()
            else:
                timer.callbacks.append(
                    lambda ev: log.append((ev._value, env.now))
                )
        env.run()
        return log

    ref = Environment()
    ref_log = drive(ref, build(ref, pin=False))

    env = ShardedEnvironment(shards=4)
    log = drive(env, build(env, pin=True))

    assert log == ref_log
    assert env.now == ref.now
    assert env.events_processed == ref.events_processed
