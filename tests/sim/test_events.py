"""Unit tests for the event primitives."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event, Timeout


@pytest.fixture()
def env():
    return Environment()


class TestEvent:
    def test_fresh_event_is_pending(self, env):
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed

    def test_value_before_trigger_raises(self, env):
        ev = env.event()
        with pytest.raises(AttributeError):
            _ = ev.value
        with pytest.raises(AttributeError):
            _ = ev.ok

    def test_succeed_sets_value(self, env):
        ev = env.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 42

    def test_succeed_twice_raises(self, env):
        ev = env.event()
        ev.succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()

    def test_fail_then_succeed_raises(self, env):
        ev = env.event()
        ev.fail(ValueError("boom"))
        ev.defuse()
        with pytest.raises(RuntimeError):
            ev.succeed()

    def test_fail_requires_exception(self, env):
        ev = env.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_callbacks_run_on_processing(self, env):
        ev = env.event()
        seen = []
        ev.callbacks.append(lambda e: seen.append(e.value))
        ev.succeed("hello")
        env.run()
        assert seen == ["hello"]
        assert ev.processed

    def test_unhandled_failure_surfaces_in_run(self, env):
        ev = env.event()
        ev.fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run()

    def test_defused_failure_does_not_crash(self, env):
        ev = env.event()
        ev.fail(RuntimeError("handled"))
        ev.defuse()
        env.run()  # no exception

    def test_trigger_copies_outcome(self, env):
        src = env.event()
        dst = env.event()
        src.succeed(7)
        dst.trigger(src)
        assert dst.value == 7


class TestTimeout:
    def test_fires_at_expected_time(self, env):
        times = []

        def proc(env):
            yield env.timeout(3.5)
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [3.5]

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_timeout_carries_value(self, env):
        results = []

        def proc(env):
            value = yield env.timeout(1, value="payload")
            results.append(value)

        env.process(proc(env))
        env.run()
        assert results == ["payload"]

    def test_timeouts_fire_in_order(self, env):
        order = []

        def waiter(env, delay, tag):
            yield env.timeout(delay)
            order.append(tag)

        env.process(waiter(env, 2, "b"))
        env.process(waiter(env, 1, "a"))
        env.process(waiter(env, 3, "c"))
        env.run()
        assert order == ["a", "b", "c"]

    def test_equal_times_fifo(self, env):
        order = []

        def waiter(env, tag):
            yield env.timeout(5)
            order.append(tag)

        for tag in range(10):
            env.process(waiter(env, tag))
        env.run()
        assert order == list(range(10))


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        results = {}

        def proc(env):
            t1 = env.timeout(1, value="one")
            t2 = env.timeout(2, value="two")
            got = yield env.all_of([t1, t2])
            results["time"] = env.now
            results["values"] = sorted(got.values())

        env.process(proc(env))
        env.run()
        assert results["time"] == 2
        assert results["values"] == ["one", "two"]

    def test_any_of_fires_on_first(self, env):
        results = {}

        def proc(env):
            t1 = env.timeout(1, value="fast")
            t2 = env.timeout(10, value="slow")
            got = yield env.any_of([t1, t2])
            results["time"] = env.now
            results["values"] = list(got.values())

        env.process(proc(env))
        env.run()
        assert results["time"] == 1
        assert results["values"] == ["fast"]

    def test_empty_all_of_fires_immediately(self, env):
        fired = []

        def proc(env):
            yield env.all_of([])
            fired.append(env.now)

        env.process(proc(env))
        env.run()
        assert fired == [0.0]

    def test_and_operator(self, env):
        done = []

        def proc(env):
            yield env.timeout(1) & env.timeout(2)
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [2]

    def test_or_operator(self, env):
        done = []

        def proc(env):
            yield env.timeout(1) | env.timeout(2)
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [1]

    def test_condition_failure_propagates(self, env):
        def failer(env):
            yield env.timeout(1)
            raise ValueError("inner failure")

        def waiter(env):
            p = env.process(failer(env))
            t = env.timeout(10)
            with pytest.raises(ValueError, match="inner failure"):
                yield env.all_of([p, t])

        env.process(waiter(env))
        env.run()

    def test_cross_environment_events_rejected(self, env):
        other = Environment()
        with pytest.raises(ValueError):
            env.all_of([env.timeout(1), other.timeout(1)])

    def test_already_processed_event_in_condition(self, env):
        ev = env.timeout(0, value="early")
        env.run(until=1)
        assert ev.processed
        done = []

        def proc(env):
            got = yield env.all_of([ev])
            done.append(list(got.values()))

        env.process(proc(env))
        env.run()
        assert done == [["early"]]
