"""Hotspot policy: popularity-driven replica boosts and cool-down trims."""

from __future__ import annotations

import pytest

from repro.hdfs import HdfsReader
from repro.policy import HotspotPolicy, HotspotReplicationPolicy
from repro.units import MB

from .conformance import build_deployment

BASE = 3  # configured replication factor in build_deployment's config


class TestReplicationPolicyUnit:
    def test_heat_counts_only_window_reads(self) -> None:
        policy = HotspotReplicationPolicy(BASE, window=30.0)
        for at in (0.0, 5.0, 40.0):
            policy.note_read(7, at)
        assert policy.heat(7, 41.0) == 1  # 0.0 and 5.0 aged out
        assert policy.heat(8, 41.0) == 0  # never-read block

    def test_target_tracks_promotion_and_demotion(self) -> None:
        policy = HotspotReplicationPolicy(BASE, boost=2, hot_reads=2)
        policy.note_read(1, 0.0)
        assert policy.target_replication(1, 1.0) == BASE
        policy.note_read(1, 1.0)
        assert policy.target_replication(1, 2.0) == BASE + 2
        assert (policy.promotions, policy.demotions) == (1, 0)
        assert policy.target_replication(1, 100.0) == BASE  # cooled
        assert (policy.promotions, policy.demotions) == (1, 1)

    def test_excess_replicas_trims_to_target_deterministically(self) -> None:
        policy = HotspotReplicationPolicy(BASE)
        holders = ["dn0", "dn5", "dn2", "dn7"]
        victims = policy.excess_replicas(9, holders, now=0.0)
        assert victims == ("dn7",)  # reverse-name order, one extra copy
        assert policy.excess_replicas(9, holders[:3], now=0.0) == ()

    def test_scan_bound_covers_the_boost(self) -> None:
        policy = HotspotReplicationPolicy(BASE, boost=2)
        assert policy.scan_replication() == BASE + 2
        assert policy.manages_excess

    @pytest.mark.parametrize(
        "kwargs",
        [{"boost": 0}, {"hot_reads": 0}, {"window": 0.0}, {"window": -1.0}],
    )
    def test_invalid_parameters_rejected(self, kwargs: dict) -> None:
        with pytest.raises(ValueError):
            HotspotReplicationPolicy(BASE, **kwargs)


class TestEndToEnd:
    def _deploy(self):
        env, deployment = build_deployment("hotspot")
        client = deployment.client()
        env.run(until=env.process(client.put("/hot", 4 * MB)))
        return env, deployment

    def _read(self, env, deployment, times: int = 1) -> None:
        for _ in range(times):
            reader = HdfsReader(deployment)
            env.run(until=env.process(reader.get("/hot")))

    def _replication_counts(self, deployment) -> list[int]:
        namenode = deployment.namenode
        return [
            len(namenode.blocks.locations(block.block_id))
            for block in namenode.namespace.get("/hot").blocks
        ]

    def test_hot_file_gains_a_replica_then_cools_back(self) -> None:
        env, deployment = self._deploy()
        assert isinstance(deployment.policy, HotspotPolicy)
        monitor = deployment.replication_monitor

        # Below hot_reads: nothing changes.
        self._read(env, deployment, times=2)
        env.run(until=env.now + 5)
        assert self._replication_counts(deployment) == [BASE, BASE]

        # Third read within the window tips every block hot.
        self._read(env, deployment)
        env.run(until=env.now + 10)
        assert self._replication_counts(deployment) == [BASE + 1, BASE + 1]
        assert monitor.completed  # the boost came from the monitor

        # Past the 30 s window the heat expires and the excess pass
        # trims back down — never below the base factor.
        env.run(until=env.now + 60)
        assert self._replication_counts(deployment) == [BASE, BASE]
        assert monitor.removed
        replication = deployment.policy.replication()
        assert replication.promotions >= 2
        assert replication.demotions >= 2

    def test_trim_is_journaled(self) -> None:
        env, deployment = self._deploy()
        self._read(env, deployment, times=3)
        env.run(until=env.now + 10)
        env.run(until=env.now + 60)
        trims = deployment.journal.events(kind="replica_trimmed")
        assert trims
        assert all(event.details.get("datanode") for event in trims)

    def test_acked_bytes_survive_boost_and_trim(self) -> None:
        env, deployment = self._deploy()
        self._read(env, deployment, times=3)
        env.run(until=env.now + 70)
        assert deployment.namenode.file_fully_replicated("/hot")
        # The file still reads back fine after the full heat cycle.
        self._read(env, deployment)
