"""Golden-regeneration guard: regen scripts are idempotent and current.

The conformance story rests on byte-pinned goldens, so the scripts that
*produce* them must themselves be trustworthy: running a regen twice in
one process must yield identical bytes (no hidden global state, wall
clock, or unseeded RNG), and what it yields must match what is checked
in (a drifted golden would silently weaken every equivalence proof that
pins it).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from tests.obs import regen_goldens as obs_regen
from tests.service import regen_goldens as service_regen

MODULES = {"obs": obs_regen, "service": service_regen}


@pytest.fixture(scope="module", params=sorted(MODULES), ids=sorted(MODULES))
def regen(request):
    module = MODULES[request.param]
    return module, module.generate(), module.generate()


def test_regeneration_is_idempotent(regen) -> None:
    module, first, second = regen
    assert first == second, f"{module.__name__} is not deterministic"


def test_regeneration_matches_checked_in_goldens(regen) -> None:
    module, first, _ = regen
    here = Path(module.__file__).parent
    assert first, "generate() produced nothing"
    for name, text in first.items():
        golden = here / name
        assert golden.exists(), f"{golden} missing — run {module.__name__}"
        assert golden.read_text() == text, (
            f"{golden.name} drifted from its regen script; if the change "
            f"is intentional, rerun PYTHONPATH=src python -m "
            f"{module.__name__}"
        )
