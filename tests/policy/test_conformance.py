"""Conformance suite: every registered policy passes the §12 contract.

Parametrized over ``policy_names()`` so registering a new policy
automatically enrolls it; the check implementations live in
``tests/policy/conformance.py``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policy import (
    Policy,
    policy_class,
    policy_names,
    register_policy,
    resolve_policy,
    use_policy,
)

from .conformance import (
    check_chaos_durability,
    check_determinism,
    check_interface,
    check_read_feedback,
    check_rereplication_convergence,
    upload_fingerprint,
)

POLICIES = policy_names()


def test_builtin_policies_registered() -> None:
    assert set(POLICIES) >= {"default", "hotspot", "tuner"}


@pytest.mark.parametrize("name", POLICIES)
class TestConformance:
    def test_interface(self, name: str) -> None:
        check_interface(name)

    def test_determinism_fixed_seed(self, name: str) -> None:
        check_determinism(name)

    def test_chaos_durability(self, name: str) -> None:
        check_chaos_durability(name)

    def test_rereplication_convergence(self, name: str) -> None:
        check_rereplication_convergence(name)

    def test_read_feedback(self, name: str) -> None:
        check_read_feedback(name)


@pytest.mark.parametrize("name", POLICIES)
@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_determinism_across_seeds(name: str, seed: int) -> None:
    """Fresh-instance runs of any seed reproduce the same fingerprint."""
    assert upload_fingerprint(name, seed=seed) == upload_fingerprint(
        name, seed=seed
    )


class TestRegistry:
    def test_unknown_name_rejected(self) -> None:
        with pytest.raises(KeyError, match="unknown policy"):
            policy_class("no-such-policy")

    def test_duplicate_registration_rejected(self) -> None:
        class Impostor(Policy):
            name = "default"

        with pytest.raises(ValueError, match="already registered"):
            register_policy(Impostor)

    def test_reregistering_same_class_is_idempotent(self) -> None:
        cls = policy_class("default")
        assert register_policy(cls) is cls

    def test_bad_spec_type_rejected(self) -> None:
        with pytest.raises(TypeError, match="policy spec"):
            resolve_policy(42, deployment=None)

    def test_use_policy_swaps_and_restores_ambient(self) -> None:
        from repro.policy import active_policy_spec

        assert active_policy_spec() == "default"
        with use_policy("hotspot") as active:
            assert active == "hotspot"
            assert active_policy_spec() == "hotspot"
        assert active_policy_spec() == "default"

    def test_ambient_policy_reaches_deployments(self) -> None:
        from repro.policy import HotspotPolicy

        from .conformance import build_deployment

        with use_policy("hotspot"):
            _, deployment = build_deployment(policy=None)
        assert isinstance(deployment.policy, HotspotPolicy)

    def test_instance_rebinds_keeping_identity(self) -> None:
        from .conformance import build_deployment

        instance = policy_class("tuner")()
        _, first = build_deployment(instance)
        _, second = build_deployment(instance)
        assert first.policy is instance
        assert second.policy is instance
        assert instance.deployment is second
