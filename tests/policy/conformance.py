"""Reusable policy-conformance checks (the contract in DESIGN.md §12).

Every policy registered with :func:`repro.policy.register_policy` must
pass the checks in this module — ``tests/policy/test_conformance.py``
drives them over ``policy_names()``, so registering a new policy
automatically enrolls it.  The contract:

* **Interface** — the registry can build it, it yields a usable
  replication policy, and its tuning/describe hooks return the
  documented types.
* **Determinism** — the same (seed, workload, policy name) produces the
  same upload fingerprint, run to run.  Policies may keep *learned*
  state but must not read wall clocks or unseeded RNGs.
* **Durability under chaos** — a fixed-seed fault campaign stays all
  green: no acked-durability or replication-convergence violations, no
  hangs.  Adaptive replica counts must never cost an acked byte.
* **Re-replication convergence** — after a post-write holder death the
  monitor heals every block back to at least the configured base
  factor.

Import these from new policy test modules rather than re-deriving the
scenarios; the fingerprints are intentionally strict (full per-block
pipeline layouts, not just durations).
"""

from __future__ import annotations

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.faults import report_json, run_campaign
from repro.hdfs import HdfsDeployment
from repro.policy import ClientTuning, Policy, ReplicationPolicy, policy_class
from repro.sim import Environment
from repro.units import KB, MB
from repro.workloads import heterogeneous, run_upload

__all__ = [
    "build_deployment",
    "upload_fingerprint",
    "check_interface",
    "check_determinism",
    "check_chaos_durability",
    "check_rereplication_convergence",
    "check_read_feedback",
]


def build_deployment(policy, n_datanodes: int = 9, seed: int = 20140901):
    """A small homogeneous HDFS deployment with fast monitor cadence."""
    env = Environment()
    config = SimulationConfig(seed=seed).with_hdfs(
        block_size=2 * MB,
        packet_size=64 * KB,
        heartbeat_interval=1.0,
        dead_node_heartbeats=3,
    )
    cluster = build_homogeneous(
        env, SMALL, n_datanodes=n_datanodes, config=config
    )
    return env, HdfsDeployment(cluster, policy=policy)


def upload_fingerprint(
    policy, seed: int = 20140901, system: str = "smarth", size: int = 32 * MB
):
    """Everything determinism cares about from one fresh-cluster upload."""
    outcome = run_upload(
        heterogeneous(),
        system,
        size,
        config=SimulationConfig(seed=seed),
        policy=policy,
    )
    result = outcome.result
    return (
        result.duration,
        result.n_blocks,
        tuple(tuple(p) for p in result.pipelines),
        result.max_concurrent_pipelines,
        outcome.fully_replicated,
    )


# ----------------------------------------------------------------------
def check_interface(name: str) -> None:
    """The registry contract: buildable, typed hooks, sane describe()."""
    cls = policy_class(name)
    assert issubclass(cls, Policy)
    assert cls.name == name
    _, deployment = build_deployment(name)
    policy = deployment.policy
    assert isinstance(policy, cls)
    assert policy.deployment is deployment

    replication = policy.replication()
    assert isinstance(replication, ReplicationPolicy)
    assert replication is policy.replication()  # memoized per binding
    base = deployment.config.hdfs.replication
    assert replication.scan_replication() >= base
    assert replication.target_replication(0, 0.0) >= base

    tuning = policy.tuning_for("client")
    assert isinstance(tuning, ClientTuning)
    description = policy.describe()
    assert description["name"] == name


def check_determinism(name: str, seed: int = 20140901) -> None:
    """Same seed + same workload => identical upload fingerprint."""
    for system in ("hdfs", "smarth"):
        first = upload_fingerprint(name, seed=seed, system=system)
        second = upload_fingerprint(name, seed=seed, system=system)
        assert first == second, f"{name}/{system} not deterministic"


def check_chaos_durability(
    name: str, seed: int = 7, runs: int = 2, scale: float = 0.25
) -> dict:
    """Fixed-seed chaos campaign under the policy must stay all green."""
    report = run_campaign(
        seed, runs, protocols=("hdfs", "smarth"), scale=scale, policy=name
    )
    assert report["all_green"], report_json(report)
    totals = report["invariant_totals"]
    assert totals["acked_durability"]["violations"] == 0
    assert totals["replication_convergence"]["violations"] == 0
    assert report["policy"] == name
    return report


def check_read_feedback(name: str) -> None:
    """The read path works under the policy and feeds it back.

    ``rank_replicas`` must return a permutation of the live holders it
    was handed (drop or duplicate a replica and degraded reads break),
    whole-file reads must complete in full from real holders, and
    ``note_read`` must fire once per block — the popularity feed adaptive
    replication policies learn from.
    """
    from repro.hdfs import HdfsReader

    env, deployment = build_deployment(name)
    client = deployment.client()
    env.run(until=env.process(client.put("/f", 6 * MB)))

    namenode = deployment.namenode
    reader = HdfsReader(deployment)
    inode = namenode.namespace.get("/f")
    for block in inode.blocks:
        holders = set(namenode.blocks.locations(block.block_id))
        ranked = reader._candidates(block)
        assert len(ranked) == len(holders), (
            f"{name}: rank_replicas changed the candidate count for "
            f"block {block.block_id}"
        )
        assert set(ranked) == holders, (
            f"{name}: rank_replicas is not a permutation of the holders"
        )

    policy = deployment.policy
    fed: list[tuple[int, str]] = []
    original = policy.note_read

    def recording_note_read(block_id: int, datanode: str) -> None:
        fed.append((block_id, datanode))
        original(block_id, datanode)

    policy.note_read = recording_note_read
    try:
        result = env.run(until=env.process(reader.get("/f")))
    finally:
        policy.note_read = original

    assert result.size == inode.size
    assert len(result.sources) == len(inode.blocks)
    assert fed == result.sources, (
        f"{name}: note_read calls {fed} diverge from the sources actually "
        f"read {result.sources}"
    )
    for block_id, source in result.sources:
        assert source in namenode.blocks.locations(block_id)


def check_rereplication_convergence(name: str) -> None:
    """A post-write holder death heals back to >= the base factor."""
    env, deployment = build_deployment(name)
    client = deployment.client()
    result = env.run(until=env.process(client.put("/f", 4 * MB)))
    namenode = deployment.namenode
    assert namenode.file_fully_replicated("/f")

    victim = result.pipelines[0][0]
    deployment.datanode(victim).kill()
    env.run(until=env.now + 60)

    assert namenode.file_fully_replicated("/f"), f"{name} failed to heal"
    base = deployment.config.hdfs.replication
    for block in namenode.namespace.get("/f").blocks:
        replicas = namenode.blocks.locations(block.block_id)
        assert victim not in replicas
        assert len(replicas) >= base
