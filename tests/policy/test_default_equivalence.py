"""DefaultPolicy is the pre-framework behavior, byte for byte.

The golden suites (`tests/experiments/`) already pin the ambient-default
path; these tests close the loop on the framework itself: selecting the
default policy *explicitly* — by name, class or instance — changes
nothing, and a chaos campaign under ``--policy default`` reproduces the
policy-free report except for the report's ``policy`` tag.
"""

from __future__ import annotations

import json

import pytest

from repro.faults import report_json, run_campaign
from repro.policy import DefaultPolicy

from .conformance import build_deployment, upload_fingerprint

SEED = 11
SCALE = 0.25


@pytest.mark.parametrize("system", ["hdfs", "smarth"])
def test_explicit_default_matches_ambient(system: str) -> None:
    ambient = upload_fingerprint(None, system=system)
    by_name = upload_fingerprint("default", system=system)
    by_class = upload_fingerprint(DefaultPolicy, system=system)
    by_instance = upload_fingerprint(DefaultPolicy(), system=system)
    assert ambient == by_name == by_class == by_instance


def test_default_policy_keeps_namenode_placement() -> None:
    """placement() returning None leaves the namenode's own policy
    object in place — the RNG-sharing invariant the equivalence rests
    on (DefaultPlacementPolicy draws from ``namenode.rng``, the same
    stream ``get_additional_datanode`` uses)."""
    from repro.hdfs.placement import DefaultPlacementPolicy

    _, with_policy = build_deployment("default")
    _, without = build_deployment(None)
    assert with_policy.policy.placement() is None
    assert type(with_policy.namenode.placement) is DefaultPlacementPolicy
    assert type(without.namenode.placement) is DefaultPlacementPolicy


def test_campaign_report_identical_modulo_policy_tag() -> None:
    tagged = run_campaign(
        SEED, 2, protocols=("hdfs", "smarth"), scale=SCALE, policy="default"
    )
    untagged = run_campaign(
        SEED, 2, protocols=("hdfs", "smarth"), scale=SCALE
    )
    assert "policy" not in untagged  # historical reports keep their bytes
    assert tagged.pop("policy") == "default"
    assert report_json(tagged) == report_json(untagged)


def test_repro_command_carries_policy_flag() -> None:
    """A red run's repro command must reproduce the run, flag included.

    No fault schedule in the suite goes red, so synthesize the check on
    the command formatting path via a report round trip."""
    report = run_campaign(3, 1, protocols=("smarth",), scale=SCALE, policy="hotspot")
    rendered = json.loads(report_json(report))
    assert rendered["policy"] == "hotspot"
    for run in rendered["runs_detail"]:
        for verdict in run["verdicts"]:
            if not verdict["ok"]:
                assert "--policy hotspot" in verdict["repro"]
