"""Online tuner: probe-then-exploit over SMARTH protocol knobs."""

from __future__ import annotations

from repro.config import SimulationConfig
from repro.policy import ClientTuning, OnlineTunerPolicy
from repro.policy.tuner import DEFAULT_GRID
from repro.smarth import SmarthDeployment
from repro.units import MB
from repro.workloads import heterogeneous, run_upload


def _observe(policy: OnlineTunerPolicy, client: str, arm: int, rate: float):
    policy.observe_upload(
        client, "/f", nbytes=int(rate), duration=1.0, tuning=policy.grid[arm]
    )


class TestArmSelection:
    def test_probe_phase_cycles_the_grid(self) -> None:
        policy = OnlineTunerPolicy()
        seen = []
        for _ in range(policy._probe_budget()):
            tuning = policy.tuning_for("c")
            seen.append(policy.grid.index(tuning))
            _observe(policy, "c", seen[-1], rate=100.0)
        assert seen == [0, 1, 2, 0, 1, 2]
        assert policy.chosen("c") is not None

    def test_exploitation_picks_best_mean_throughput(self) -> None:
        policy = OnlineTunerPolicy()
        for arm, rate in ((0, 50.0), (1, 200.0), (2, 100.0)):
            for _ in range(policy.probe_rounds):
                _observe(policy, "c", arm, rate)
        assert policy.best_arm("c") == 1
        assert policy.tuning_for("c") == policy.grid[1]
        assert policy.chosen("c") == policy.grid[1]

    def test_ties_break_toward_the_later_arm(self) -> None:
        policy = OnlineTunerPolicy()
        for arm in range(3):
            for _ in range(policy.probe_rounds):
                _observe(policy, "c", arm, rate=100.0)
        assert policy.best_arm("c") == 2

    def test_chosen_is_none_while_probing(self) -> None:
        policy = OnlineTunerPolicy()
        assert policy.chosen("c") is None
        _observe(policy, "c", 0, rate=100.0)
        assert policy.chosen("c") is None

    def test_clients_learn_independently(self) -> None:
        policy = OnlineTunerPolicy()
        for _ in range(policy.probe_rounds):
            _observe(policy, "a", 0, rate=500.0)
            _observe(policy, "a", 1, rate=10.0)
            _observe(policy, "a", 2, rate=10.0)
            _observe(policy, "b", 0, rate=10.0)
            _observe(policy, "b", 1, rate=10.0)
            _observe(policy, "b", 2, rate=500.0)
        assert policy.best_arm("a") == 0
        assert policy.best_arm("b") == 2

    def test_foreign_tuning_is_counted_but_not_scored(self) -> None:
        policy = OnlineTunerPolicy()
        foreign = ClientTuning(local_opt_threshold=0.5)
        policy.observe_upload("c", "/f", 100, 1.0, foreign)
        assert policy._uploads["c"] == 1
        assert policy.best_arm("c") == len(policy.grid) - 1  # all unscored

    def test_describe_serializes_the_grid(self) -> None:
        description = OnlineTunerPolicy().describe()
        assert description["name"] == "tuner"
        assert [g["local_opt_threshold"] for g in description["grid"]] == [
            0.8,
            0.9,
            1.0,
        ]


class TestAppliedTunings:
    def _put(self, policy, size=8 * MB):
        env, cluster = heterogeneous().make(SimulationConfig())
        deployment = SmarthDeployment(cluster, policy=policy)
        client = deployment.client()
        result = env.run(until=env.process(client.put("/f", size)))
        return client, result

    def test_threshold_reaches_the_local_optimizer(self) -> None:
        policy = OnlineTunerPolicy()
        policy.grid = (ClientTuning(local_opt_threshold=1.0),)
        client, _ = self._put(policy)
        assert client.local_opt.threshold == 1.0
        assert client._tuning == policy.grid[0]

    def test_max_pipelines_caps_concurrency(self) -> None:
        policy = OnlineTunerPolicy()
        policy.grid = (ClientTuning(max_pipelines=1),)
        _, result = self._put(policy, size=16 * MB)
        assert result.max_concurrent_pipelines == 1

    def test_default_grid_matches_the_papers_threshold_first(self) -> None:
        assert DEFAULT_GRID[0].local_opt_threshold == 0.8


class TestCrossDeploymentLearning:
    def test_one_instance_learns_across_fresh_clusters(self) -> None:
        policy = OnlineTunerPolicy()
        uploads = policy._probe_budget() + 2
        for _ in range(uploads):
            run_upload(
                heterogeneous(),
                "smarth",
                8 * MB,
                config=SimulationConfig(),
                policy=policy,
            )
        (client,) = policy._uploads
        assert policy._uploads[client] == uploads
        assert policy.chosen(client) is not None
        for arm in range(len(policy.grid)):
            histogram = policy.metrics.histogram(
                policy._arm_metric(client, arm)
            )
            assert histogram.count >= policy.probe_rounds

    def test_learning_is_deterministic(self) -> None:
        def learn() -> tuple:
            policy = OnlineTunerPolicy()
            durations = []
            for _ in range(policy._probe_budget() + 1):
                outcome = run_upload(
                    heterogeneous(),
                    "smarth",
                    8 * MB,
                    config=SimulationConfig(),
                    policy=policy,
                )
                durations.append(outcome.duration)
            (client,) = policy._uploads
            return tuple(durations), policy.chosen(client)

        assert learn() == learn()
