"""Regenerate the pinned fig5 trace goldens.

Usage:  PYTHONPATH=src python tests/obs/regen_goldens.py

:func:`generate` is the pure half — it returns the golden file contents
without touching disk, so ``tests/policy/test_regen_goldens.py`` can
assert the regeneration is idempotent and matches the checked-in bytes.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs import chrome_trace_json
from repro.obs.trace_cmd import run_traced

HERE = Path(__file__).parent


def generate() -> dict[str, str]:
    """Golden file name -> contents, freshly computed."""
    run = run_traced("fig5", seed=0, scale=0.25)
    return {
        "golden_fig5_trace.json": chrome_trace_json(run.tracer, label="fig5"),
        "golden_fig5_metrics.txt": run.summary,
    }


def main() -> None:
    for name, text in generate().items():
        path = HERE / name
        path.write_text(text)
        print(f"wrote {path} ({path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
