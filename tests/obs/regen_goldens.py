"""Regenerate the pinned fig5 trace goldens.

Usage:  PYTHONPATH=src python tests/obs/regen_goldens.py
"""

from __future__ import annotations

from pathlib import Path

from repro.obs import chrome_trace_json
from repro.obs.trace_cmd import run_traced

HERE = Path(__file__).parent


def main() -> None:
    run = run_traced("fig5", seed=0, scale=0.25)
    trace = HERE / "golden_fig5_trace.json"
    metrics = HERE / "golden_fig5_metrics.txt"
    trace.write_text(chrome_trace_json(run.tracer, label="fig5"))
    metrics.write_text(run.summary)
    print(f"wrote {trace} ({trace.stat().st_size} bytes)")
    print(f"wrote {metrics} ({metrics.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
