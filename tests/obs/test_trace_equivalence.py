"""Property test: traces are identical with and without packet trains.

The packet-train fast path (``coalesce_packets=0``) must emit exactly the
spans the legacy per-packet loop (``coalesce_packets=1``) emits — same
names, times, args — under randomized throttle/kill schedules.  Faults go
through :class:`FaultInjector`, which registers every disturbance time up
front; the train planner declines any window containing one, so both
modes replay the same per-packet timeline around faults while the
explicit empty-schedule example exercises true train-vs-loop parity.
"""

from __future__ import annotations

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.config import SimulationConfig
from repro.faults.injector import FaultInjector
from repro.hdfs.deployment import HdfsDeployment
from repro.obs import check_wellformed, chrome_trace_json
from repro.smarth.deployment import SmarthDeployment
from repro.units import KB, MB
from repro.workloads.scenarios import two_rack

SIZE = 12 * MB
DATANODES = 6
DEADLINE = 120.0  # simulated seconds; ample for a 12 MB upload
_TIMES = [round(0.1 + 0.2 * i, 1) for i in range(10)]  # 0.1 .. 1.9 s

throttles = st.tuples(
    st.just("throttle"),
    st.sampled_from([f"dn{i}" for i in range(DATANODES)]),
    st.sampled_from([25.0, 50.0, 100.0]),
    st.sampled_from(_TIMES),
)
kills = st.tuples(
    st.just("kill_busy"),
    st.integers(min_value=0, max_value=2),
    st.just(None),
    st.sampled_from(_TIMES),
)
schedules = st.lists(st.one_of(throttles, kills), max_size=3)


def _apply(injector: FaultInjector, schedule) -> None:
    for kind, a, b, at in schedule:
        if kind == "throttle":
            injector.throttle_at(a, b, at=at)
        else:
            injector.kill_busy_at(at=at, pick=a)


def _defuse(event) -> None:
    if not event.ok:
        event.defuse()


def _traced_upload(system: str, coalesce: int, schedule, seed: int) -> str:
    config = SimulationConfig(seed=seed).with_hdfs(
        block_size=4 * MB, packet_size=256 * KB, coalesce_packets=coalesce
    )
    env, cluster = two_rack("small", n_datanodes=DATANODES).make(config)
    deployment = (
        SmarthDeployment(cluster, observe=True)
        if system == "smarth"
        else HdfsDeployment(cluster, observe=True)
    )
    _apply(FaultInjector(deployment), schedule)
    client = deployment.client()
    proc = env.process(client.put("/eq/file.bin", SIZE), name="eq:put")
    proc.callbacks.append(_defuse)
    env.run(until=DEADLINE)
    # Failed/hung uploads still produce comparable (partial) traces.
    check_wellformed(deployment.tracer, allow_open=True)
    return chrome_trace_json(deployment.tracer)


@settings(max_examples=8, deadline=None, derandomize=True)
@given(schedule=schedules, seed=st.integers(min_value=0, max_value=7))
@example(schedule=[], seed=0)  # pure train path vs pure legacy loop
@example(schedule=[("kill_busy", 1, None, 0.5)], seed=3)
def test_trace_identical_across_coalesce_modes(schedule, seed) -> None:
    for system in ("hdfs", "smarth"):
        fast = _traced_upload(system, 0, schedule, seed)
        legacy = _traced_upload(system, 1, schedule, seed)
        assert fast == legacy, (
            f"{system} trace differs between train and per-packet modes "
            f"for schedule={schedule} seed={seed}"
        )
