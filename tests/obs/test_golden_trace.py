"""Golden trace: the pinned output of ``python -m repro trace fig5 --seed 0``.

Byte-level pinning of the merged (hdfs + smarth) Chrome trace and the
metrics summary for the fig5-style throttled upload at the default
``--scale 0.25``.  Any change to span timing, naming, ordering or the
exporter's canonicalization shows up as a diff here; regenerate with

    PYTHONPATH=src python tests/obs/regen_goldens.py

after verifying the new timeline is intentional.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import check_wellformed, chrome_trace_json
from repro.obs.trace_cmd import run_traced

HERE = Path(__file__).parent
GOLDEN_TRACE = HERE / "golden_fig5_trace.json"
GOLDEN_METRICS = HERE / "golden_fig5_metrics.txt"

SEED = 0
SCALE = 0.25


@pytest.fixture(scope="module")
def fig5_run():
    return run_traced("fig5", seed=SEED, scale=SCALE)


class TestGoldenFig5:
    def test_trace_is_wellformed(self, fig5_run) -> None:
        check_wellformed(fig5_run.tracer, allow_open=fig5_run.allow_open)

    def test_trace_matches_golden(self, fig5_run) -> None:
        rendered = chrome_trace_json(fig5_run.tracer, label="fig5")
        assert rendered == GOLDEN_TRACE.read_text(), (
            "fig5 trace drifted from the golden; regenerate with "
            "tests/obs/regen_goldens.py if the change is intentional"
        )

    def test_metrics_match_golden(self, fig5_run) -> None:
        assert fig5_run.summary == GOLDEN_METRICS.read_text()

    def test_repeated_runs_byte_identical(self, fig5_run) -> None:
        again = run_traced("fig5", seed=SEED, scale=SCALE)
        assert chrome_trace_json(again.tracer, label="fig5") == chrome_trace_json(
            fig5_run.tracer, label="fig5"
        )
        assert again.summary == fig5_run.summary

    def test_cli_writes_the_golden_bytes(self, tmp_path, capsys) -> None:
        """``python -m repro trace fig5 --seed 0`` is the command the
        README documents; its file output must be the golden."""
        out = tmp_path / "trace.json"
        rc = main(["trace", "fig5", "--seed", str(SEED), "--out", str(out)])
        assert rc == 0
        assert out.read_text() == GOLDEN_TRACE.read_text()
        assert capsys.readouterr().out == GOLDEN_METRICS.read_text()

    def test_trace_has_both_systems_and_key_span_names(self, fig5_run) -> None:
        spans = fig5_run.tracer.spans()
        actors = {s.actor for s in spans}
        assert any(a.startswith("hdfs/client") for a in actors)
        assert any(a.startswith("smarth/client") for a in actors)
        names = {s.name for s in spans}
        assert {
            "upload", "block", "pipeline", "stream", "ack",
            "store", "forward", "ack_relay", "allocate", "rank",
        } <= names
        assert "fnfa_wait" in names  # SMARTH-only span
        journal_kinds = {
            i.name for i in fig5_run.tracer.instants()
        }
        assert "add_block" in journal_kinds  # journal mirroring active


class TestFaultrecTrace:
    """The kill+throttle schedule traces cleanly too (no golden: the
    wellformedness invariants are the contract under faults)."""

    def test_faultrec_wellformed_and_deterministic(self) -> None:
        first = run_traced("faultrec", seed=SEED, scale=SCALE)
        check_wellformed(first.tracer, allow_open=True)
        names = {s.name for s in first.tracer.spans()}
        assert "recovery" in names
        again = run_traced("faultrec", seed=SEED, scale=SCALE)
        assert chrome_trace_json(first.tracer) == chrome_trace_json(
            again.tracer
        )
