"""Tests for the service-facing metrics extensions.

Covers labelled metric names, time-window bucketing, nearest-rank
percentiles and the registry snapshot protocol added for the ingest
service's SLO tracking and checkpoint/resume.
"""

from __future__ import annotations

import pickle

import pytest

from repro.obs import MetricsRegistry, labelled, metrics_summary, window_bucket
from repro.obs.metrics import Histogram


class TestLabelled:
    def test_keys_sorted_regardless_of_call_order(self) -> None:
        a = labelled("m", tenant="t7", cls="fast")
        b = labelled("m", cls="fast", tenant="t7")
        assert a == b == "m{cls=fast,tenant=t7}"

    def test_no_labels_is_identity(self) -> None:
        assert labelled("plain") == "plain"


class TestWindowBucket:
    def test_buckets_floor_and_zero_pad(self) -> None:
        assert window_bucket("m", 0.0, 3600.0) == "m[000000]"
        assert window_bucket("m", 3599.9, 3600.0) == "m[000000]"
        assert window_bucket("m", 3600.0, 3600.0) == "m[000001]"
        assert window_bucket("m", 47 * 3600.0, 3600.0) == "m[000047]"

    def test_windows_sort_numerically_in_summary(self) -> None:
        names = [window_bucket("m", h * 3600.0, 3600.0) for h in range(12)]
        assert names == sorted(names)

    def test_rejects_bad_width(self) -> None:
        with pytest.raises(ValueError):
            window_bucket("m", 1.0, 0.0)


class TestPercentile:
    def test_nearest_rank(self) -> None:
        hist = Histogram("h", [float(v) for v in range(1, 101)])
        assert hist.percentile(50) == 50.0
        assert hist.percentile(95) == 95.0
        assert hist.percentile(99) == 99.0
        assert hist.percentile(100) == 100.0
        assert hist.percentile(0) == 1.0

    def test_small_samples(self) -> None:
        hist = Histogram("h", [3.0, 1.0, 2.0])
        assert hist.percentile(50) == 2.0
        assert hist.percentile(99) == 3.0

    def test_empty_and_bounds(self) -> None:
        assert Histogram("h").percentile(99) == 0.0
        with pytest.raises(ValueError):
            Histogram("h", [1.0]).percentile(101)
        with pytest.raises(ValueError):
            Histogram("h", [1.0]).percentile(-1)


class TestSnapshotProtocol:
    def _populated(self) -> MetricsRegistry:
        metrics = MetricsRegistry(enabled=True)
        metrics.count("c", 2.0)
        metrics.gauge("g", +3.0)
        metrics.gauge("g", -1.0)
        metrics.observe("h", 1.5)
        metrics.observe("h", 0.5)
        return metrics

    def test_export_restore_round_trips_summary(self) -> None:
        source = self._populated()
        state = pickle.loads(pickle.dumps(source.export_state()))
        target = MetricsRegistry(enabled=False)
        target.restore_state(state)
        assert metrics_summary(target) == metrics_summary(source)
        # Restored instruments keep accumulating, not just rendering.
        target.count("c")
        assert target.counter_value("c") == 3.0
        assert target.histogram("h").count == 2

    def test_restore_overwrites_prior_contents(self) -> None:
        target = self._populated()
        target.count("stale")
        target.restore_state(MetricsRegistry(enabled=True).export_state())
        assert target.counter_value("stale") == 0.0
        assert metrics_summary(target) == metrics_summary(
            MetricsRegistry(enabled=True)
        )


class TestPublishEnvHealth:
    def test_windowed_sharded_env_publishes_window_gauges(self) -> None:
        """Threaded windowed execution surfaces its barrier health —
        barriers, batch sizes, worker count — as ``sim.env.*`` gauges."""
        from repro.obs.metrics import publish_env_health
        from repro.sim import ShardedEnvironment

        env = ShardedEnvironment(shards=2, lookahead=float("inf"))

        def ticker(shard: int):
            for _ in range(5):
                yield env.timeout(1.0)

        for shard in range(2):
            with env.pinned(shard):
                env.process(ticker(shard), name=f"tick{shard}")
        env.run_windows(until=4.0, workers=2)

        registry = MetricsRegistry(enabled=True)
        publish_env_health(env, registry)
        gauges = {gauge.name: gauge.value for gauge in registry.gauges()}
        assert gauges["sim.env.window_barriers"] >= 1
        assert gauges["sim.env.window_events"] > 0
        assert gauges["sim.env.window_batch_max"] > 0
        assert gauges["sim.env.window_batch_mean"] > 0
        assert gauges["sim.env.window_workers"] == 2
        assert "sim.env.shard0.events" in gauges
        assert "sim.env.shard1.events" in gauges

    def test_single_heap_env_has_no_window_gauges(self) -> None:
        """The plain environment publishes only its own health keys, so
        golden metrics summaries for single-heap runs are unaffected."""
        from repro.obs.metrics import publish_env_health
        from repro.sim import Environment

        env = Environment()
        env.run(until=env.timeout(1.0))
        registry = MetricsRegistry(enabled=True)
        publish_env_health(env, registry)
        names = {gauge.name for gauge in registry.gauges()}
        assert "sim.env.events_dispatched" in names
        assert not any("window" in name for name in names)
