"""Unit tests for the repro.obs core: tracer, metrics, exporters,
wellformedness checker."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    DISABLED_METRICS,
    DISABLED_TRACER,
    MetricsRegistry,
    Tracer,
    WellformednessError,
    check_wellformed,
    chrome_trace_json,
    metrics_summary,
    render_gantt,
)


class TestTracer:
    def test_begin_end_records_interval(self) -> None:
        tracer = Tracer(enabled=True)
        sid = tracer.begin("upload", "client:c", "u", 1.0, size=42)
        tracer.end(sid, 3.5, ok=True)
        (span,) = tracer.spans()
        assert (span.name, span.start, span.end) == ("upload", 1.0, 3.5)
        assert span.args == {"size": 42, "ok": True}
        assert span.duration == 2.5

    def test_disabled_is_a_noop(self) -> None:
        sid = DISABLED_TRACER.begin("x", "a", "t", 0.0)
        assert sid == 0
        DISABLED_TRACER.end(sid, 1.0)
        DISABLED_TRACER.instant("x", "a", "t", 0.0)
        assert len(DISABLED_TRACER) == 0
        assert DISABLED_TRACER.instants() == ()

    def test_end_is_idempotent_and_tolerates_junk_ids(self) -> None:
        tracer = Tracer(enabled=True)
        sid = tracer.begin("s", "a", "t", 0.0)
        tracer.end(sid, 1.0)
        tracer.end(sid, 99.0, aborted=True)  # no-op: already closed
        tracer.end(12345, 1.0)  # no-op: unknown
        tracer.end(0, 1.0)  # no-op: disabled handle
        (span,) = tracer.spans()
        assert span.end == 1.0
        assert "aborted" not in span.args

    def test_span_ids_are_sequential_and_parent_linked(self) -> None:
        tracer = Tracer(enabled=True)
        a = tracer.begin("a", "x", "t", 0.0)
        b = tracer.begin("b", "x", "t", 0.5, parent=a)
        assert (a, b) == (1, 2)
        assert tracer.spans()[1].parent == a
        assert [s.id for s in tracer.open_spans()] == [1, 2]

    def test_journal_mirroring(self) -> None:
        from repro.analysis.trace import Journal

        tracer = Tracer(enabled=True)
        journal = Journal()
        tracer.attach_journal(journal)
        journal.emit(2.0, "add_block", "block:7", targets=("dn0",))
        (inst,) = tracer.instants()
        assert (inst.name, inst.actor, inst.time) == ("add_block", "journal", 2.0)
        assert inst.args["targets"] == ("dn0",)


class TestMetrics:
    def test_counter_gauge_histogram(self) -> None:
        m = MetricsRegistry(enabled=True)
        m.count("blocks_total")
        m.count("blocks_total", 2)
        m.gauge("live", 1)
        m.gauge("live", 1)
        m.gauge("live", -1)
        m.observe("lat", 0.5)
        m.observe("lat", 1.5)
        assert m.counter_value("blocks_total") == 3
        (g,) = m.gauges()
        assert (g.value, g.max_value) == (1, 2)
        h = m.histogram("lat")
        assert (h.count, h.mean, h.minimum, h.maximum) == (2, 1.0, 0.5, 1.5)

    def test_disabled_records_nothing(self) -> None:
        DISABLED_METRICS.count("x")
        DISABLED_METRICS.gauge("y", 1)
        DISABLED_METRICS.observe("z", 1.0)
        assert not DISABLED_METRICS.counters()
        assert not DISABLED_METRICS.gauges()
        assert not DISABLED_METRICS.histograms()

    def test_summary_renders_all_kinds(self) -> None:
        m = MetricsRegistry(enabled=True)
        m.count("c")
        m.gauge("g", 2)
        m.observe("h", 0.25)
        text = metrics_summary(m)
        assert "counters" in text and "gauges" in text and "histograms" in text
        assert metrics_summary(MetricsRegistry(enabled=True)).startswith(
            "(no metrics recorded)"
        )


def _sample_tracer() -> Tracer:
    tracer = Tracer(enabled=True)
    up = tracer.begin("upload", "client:c", "u", 0.0, size=10)
    blk = tracer.begin("block", "client:c", "b1", 0.5, parent=up)
    tracer.instant("mark", "client:c", "b1", 0.75, note="x")
    tracer.end(blk, 2.0)
    tracer.end(up, 2.5)
    return tracer


class TestChromeExport:
    def test_loadable_and_structurally_sound(self) -> None:
        doc = json.loads(chrome_trace_json(_sample_tracer(), label="t"))
        events = doc["traceEvents"]
        phases = [e["ph"] for e in events]
        assert phases.count("M") == 3  # 1 process name + 2 thread names
        assert phases.count("X") == 2
        assert phases.count("i") == 1
        xs = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {"upload", "block"}
        assert all(e["dur"] >= 0 for e in xs)
        assert doc["otherData"]["label"] == "t"

    def test_byte_identical_regardless_of_close_order(self) -> None:
        """The packet train closes spans out of order; exports must not
        care."""
        a = Tracer(enabled=True)
        x = a.begin("x", "p", "t", 0.0)
        y = a.begin("y", "p", "t", 1.0)
        a.end(x, 4.0)
        a.end(y, 2.0)

        b = Tracer(enabled=True)
        x2 = b.begin("x", "p", "t", 0.0)
        y2 = b.begin("y", "p", "t", 1.0)
        b.end(y2, 2.0)
        b.end(x2, 4.0)
        assert chrome_trace_json(a) == chrome_trace_json(b)

    def test_unclosed_spans_are_flagged(self) -> None:
        tracer = Tracer(enabled=True)
        tracer.begin("dangling", "p", "t", 1.0)
        doc = json.loads(chrome_trace_json(tracer))
        (x,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert x["args"]["unclosed"] is True
        assert x["dur"] == 0

    def test_args_canonicalized(self) -> None:
        tracer = Tracer(enabled=True)
        sid = tracer.begin(
            "s", "p", "t", 0.0, targets=("dn1", "dn0"), obj={"k": 1}
        )
        tracer.end(sid, 1.0)
        doc = json.loads(chrome_trace_json(tracer))
        (x,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert x["args"]["targets"] == ["dn1", "dn0"]
        assert isinstance(x["args"]["obj"], str)


class TestGantt:
    def test_renders_rows_and_labels(self) -> None:
        text = render_gantt(_sample_tracer(), width=40)
        assert "client:c/u" in text and "client:c/b1" in text
        assert "upload@0.000+2.500s" in text
        assert "[" in text and "]" in text

    def test_empty_tracer(self) -> None:
        assert render_gantt(Tracer(enabled=True)) == "(no closed spans)\n"


class TestWellformed:
    def test_accepts_proper_nesting(self) -> None:
        check_wellformed(_sample_tracer())

    def test_rejects_open_span_unless_allowed(self) -> None:
        tracer = Tracer(enabled=True)
        tracer.begin("s", "p", "t", 0.0)
        with pytest.raises(WellformednessError, match="left open"):
            check_wellformed(tracer)
        check_wellformed(tracer, allow_open=True)

    def test_aborted_open_span_is_tolerated(self) -> None:
        tracer = Tracer(enabled=True)
        tracer.begin("s", "p", "t", 0.0, aborted=True)
        check_wellformed(tracer)

    def test_rejects_end_before_start(self) -> None:
        tracer = Tracer(enabled=True)
        sid = tracer.begin("s", "p", "t", 5.0)
        tracer.end(sid, 1.0)
        with pytest.raises(WellformednessError, match="end < start"):
            check_wellformed(tracer)

    def test_rejects_overlap_without_nesting(self) -> None:
        tracer = Tracer(enabled=True)
        a = tracer.begin("a", "p", "t", 0.0)
        b = tracer.begin("b", "p", "t", 1.0)
        tracer.end(a, 2.0)
        tracer.end(b, 3.0)  # crosses a's end on the same lane
        with pytest.raises(WellformednessError, match="overlap"):
            check_wellformed(tracer)

    def test_separate_tracks_may_overlap(self) -> None:
        tracer = Tracer(enabled=True)
        a = tracer.begin("a", "p", "t1", 0.0)
        b = tracer.begin("b", "p", "t2", 1.0)
        tracer.end(a, 2.0)
        tracer.end(b, 3.0)
        check_wellformed(tracer)

    def test_rejects_child_outliving_parent(self) -> None:
        tracer = Tracer(enabled=True)
        a = tracer.begin("a", "p", "t1", 0.0)
        b = tracer.begin("b", "q", "t2", 1.0, parent=a)
        tracer.end(a, 2.0)
        tracer.end(b, 3.0)
        with pytest.raises(WellformednessError, match="outlives"):
            check_wellformed(tracer)

    def test_rejects_dangling_parent(self) -> None:
        tracer = Tracer(enabled=True)
        sid = tracer.begin("a", "p", "t", 0.0, parent=77)
        tracer.end(sid, 1.0)
        with pytest.raises(WellformednessError, match="dangling"):
            check_wellformed(tracer)
