"""Unit tests and properties for unit conversion helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.units import (
    GB,
    KB,
    MB,
    fmt_rate,
    fmt_size,
    fmt_time,
    gbps,
    gigabytes,
    kilobytes,
    mbps,
    megabytes,
    parse_duration,
    parse_rate,
    parse_size,
    to_gigabytes,
    to_mbps,
    to_megabytes,
)


class TestConstants:
    def test_binary_multiples(self):
        assert KB == 1024
        assert MB == 1024**2
        assert GB == 1024**3

    def test_size_constructors(self):
        assert kilobytes(64) == 64 * KB
        assert megabytes(64) == 64 * MB
        assert gigabytes(8) == 8 * GB

    def test_rates_are_decimal_bits(self):
        assert mbps(8) == 1_000_000  # 8 Mbit/s == 1 MB/s decimal
        assert gbps(1) == 125_000_000

    def test_roundtrips(self):
        assert to_mbps(mbps(216)) == pytest.approx(216)
        assert to_megabytes(megabytes(7)) == pytest.approx(7)
        assert to_gigabytes(gigabytes(3)) == pytest.approx(3)


class TestParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("8GB", 8 * GB),
            ("8 gb", 8 * GB),
            ("64MB", 64 * MB),
            ("64k", 64 * KB),
            ("0.5 MiB", MB // 2),
            ("123", 123),
            (123, 123),
            (1.5, 1),
        ],
    )
    def test_parse_size(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("bad", ["", "GB8", "8XB", "1.2.3MB"])
    def test_parse_size_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("216Mbps", mbps(216)),
            ("1Gbps", gbps(1)),
            ("100MB/s", 100e6),
            ("42", 42.0),
            (42, 42.0),
        ],
    )
    def test_parse_rate(self, text, expected):
        assert parse_rate(text) == pytest.approx(expected)

    def test_parse_rate_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_rate("fast")


class TestFormatting:
    def test_fmt_size(self):
        assert fmt_size(8 * GB) == "8.00 GB"
        assert fmt_size(64 * MB) == "64.00 MB"
        assert fmt_size(512) == "512 B"

    def test_fmt_rate(self):
        assert fmt_rate(mbps(216)) == "216.0 Mbps"

    def test_fmt_time(self):
        assert fmt_time(1.23456) == "1.235 s"


@given(st.floats(min_value=0.001, max_value=1e6))
def test_mbps_roundtrip_property(x):
    assert to_mbps(mbps(x)) == pytest.approx(x)


@given(st.integers(min_value=0, max_value=10**15))
def test_parse_size_of_fmt_is_close(n):
    """fmt_size output re-parses to within rounding error."""
    rendered = fmt_size(n)
    reparsed = units.parse_size(rendered.replace(" ", ""))
    assert reparsed == pytest.approx(n, rel=0.01, abs=1)


class TestParseDuration:
    def test_suffixes(self):
        assert parse_duration("6h") == 6 * 3600.0
        assert parse_duration("30m") == 1800.0
        assert parse_duration("2d") == 2 * 86400.0
        assert parse_duration("45s") == 45.0
        assert parse_duration("90sec") == 90.0
        assert parse_duration("5min") == 300.0
        assert parse_duration("1.5hr") == 5400.0

    def test_bare_numbers_are_seconds(self):
        assert parse_duration("42") == 42.0
        assert parse_duration(42) == 42.0
        assert parse_duration(1.5) == 1.5

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_duration("soon")
        with pytest.raises(ValueError):
            parse_duration("6 fortnights")
