"""Tests for the map-phase runner (§VII future work)."""

import pytest

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.hdfs import HdfsDeployment
from repro.mapred import JobConfig, MapRunner
from repro.sim import Environment
from repro.smarth import SmarthDeployment
from repro.units import KB, MB


def ingest(system="hdfs", size=8 * MB, n_datanodes=9):
    env = Environment()
    cfg = SimulationConfig().with_hdfs(block_size=2 * MB, packet_size=64 * KB)
    cluster = build_homogeneous(env, SMALL, n_datanodes=n_datanodes, config=cfg)
    deployment = (
        SmarthDeployment(cluster) if system == "smarth" else HdfsDeployment(cluster)
    )
    client = deployment.client()
    env.run(until=env.process(client.put("/input", size)))
    env.run(until=env.now + 1)
    return env, deployment


class TestJobConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"map_slots_per_node": 0},
            {"compute_rate": 0},
            {"scheduler_delay": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            JobConfig(**kwargs)


class TestMapPhase:
    def test_one_task_per_block(self):
        env, deployment = ingest(size=8 * MB)  # 4 blocks
        runner = MapRunner(deployment)
        result = env.run(until=env.process(runner.run("/input")))
        assert result.n_tasks == 4
        assert len(result.tasks) == 4
        assert result.duration > 0

    def test_full_locality_on_replicated_file(self):
        """Replication 3 over 9 nodes: every task can run data-local."""
        env, deployment = ingest(size=12 * MB)
        runner = MapRunner(deployment)
        result = env.run(until=env.process(runner.run("/input")))
        assert result.locality_fraction == 1.0

    def test_smarth_ingested_file_fully_processable(self):
        env, deployment = ingest(system="smarth", size=12 * MB)
        runner = MapRunner(deployment)
        result = env.run(until=env.process(runner.run("/input")))
        assert result.n_tasks == 6
        assert result.locality_fraction == 1.0

    def test_slots_bound_concurrency(self):
        env, deployment = ingest(size=16 * MB)  # 8 blocks
        runner = MapRunner(deployment, JobConfig(map_slots_per_node=1))
        result = env.run(until=env.process(runner.run("/input")))
        # With 1 slot/node, overlapping tasks on one node must serialize:
        # no two task intervals on the same node may overlap.
        by_node: dict[str, list] = {}
        for task in result.tasks:
            by_node.setdefault(task.node, []).append(task)
        for tasks in by_node.values():
            tasks.sort(key=lambda t: t.start)
            for a, b in zip(tasks, tasks[1:]):
                assert a.end <= b.start + 1e-9

    def test_compute_rate_dominates_when_slow(self):
        env, deployment = ingest(size=4 * MB)  # 2 blocks
        slow = MapRunner(deployment, JobConfig(compute_rate=1 * MB))
        result = env.run(until=env.process(slow.run("/input")))
        # 2 MB blocks at 1 MB/s compute → ≥ 2 s per task.
        for task in result.tasks:
            assert task.duration >= 2.0

    def test_remote_task_when_holders_dead(self):
        env, deployment = ingest(size=2 * MB, n_datanodes=5)
        nn = deployment.namenode
        block = nn.namespace.get("/input").blocks[0]
        holders = nn.blocks.locations(block.block_id)
        # Kill all but one holder: tasks must still run, possibly remote.
        for holder in holders[:-1]:
            deployment.datanode(holder).kill()
        runner = MapRunner(deployment, JobConfig(map_slots_per_node=1))
        result = env.run(until=env.process(runner.run("/input")))
        assert result.n_tasks == 1
        assert len(result.tasks) == 1

    def test_job_faster_with_more_slots(self):
        # 8 blocks over only 3 datanodes → several tasks per node, so the
        # slot count actually binds.
        durations = {}
        for slots in (1, 4):
            env, deployment = ingest(size=16 * MB, n_datanodes=3)
            runner = MapRunner(
                deployment, JobConfig(map_slots_per_node=slots, compute_rate=5 * MB)
            )
            result = env.run(until=env.process(runner.run("/input")))
            durations[slots] = result.duration
        assert durations[4] < durations[1]
