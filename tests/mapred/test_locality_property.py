"""Property test: map-task locality claims are truthful.

``TaskRecord.data_local=True`` is a promise that the task's node held a
finalized replica of its block when the task was assigned — across
seeds, file sizes, protocols and a random subset of dead datanodes.
Conversely, a non-local task may only happen when *no* live slot-holding
node had the replica.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.hdfs import HdfsDeployment
from repro.mapred import MapRunner
from repro.sim import Environment
from repro.smarth import SmarthDeployment
from repro.units import KB, MB


def _run_job(seed: int, n_blocks: int, smarth: bool, kills: list[int]):
    env = Environment()
    cfg = SimulationConfig(seed=seed).with_hdfs(
        block_size=MB, packet_size=64 * KB
    )
    cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=cfg)
    deployment = SmarthDeployment(cluster) if smarth else HdfsDeployment(cluster)
    client = deployment.client()
    env.run(until=env.process(client.put("/input", n_blocks * MB)))
    for i in sorted(set(kills)):
        deployment.datanode(f"dn{i}").kill()
    runner = MapRunner(deployment)
    try:
        result = env.run(until=env.process(runner.run("/input")))
    except RuntimeError:
        # Legitimate only when some block lost every live replica.
        result = None
    return deployment, result


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_blocks=st.integers(min_value=1, max_value=6),
    smarth=st.booleans(),
    kills=st.lists(
        st.integers(min_value=0, max_value=8), max_size=4, unique=True
    ),
)
def test_data_local_tasks_run_on_replica_holders(seed, n_blocks, smarth, kills):
    deployment, result = _run_job(seed, n_blocks, smarth, kills)
    blocks = deployment.namenode.blocks
    alive = {
        name
        for name, dn in deployment.datanodes.items()
        if dn.node.alive
    }

    inode = deployment.namenode.namespace.get("/input")
    if result is None:
        # The job may only fail outright if a block has no live replica
        # anywhere (not merely none on a slot-holding node).
        assert any(
            not (set(blocks.locations(b.block_id)) & alive)
            for b in inode.blocks
        )
        return

    assert len(result.tasks) == result.n_tasks == n_blocks
    for task in result.tasks:
        holders = set(blocks.locations(task.block_id))
        live_holders = holders & alive
        # Tasks only ever run on nodes that were alive at assignment.
        assert task.node in alive
        if task.data_local:
            # The locality claim: the node really held the replica.
            assert task.node in holders
        else:
            # Non-local only when locality was impossible.
            assert not live_holders
