"""Unit tests for storage-platform presets (§VII future work support)."""

import pytest

from repro.cluster import SMALL, STORAGE_PRESETS, with_storage
from repro.units import MB


class TestPresets:
    def test_catalog(self):
        assert set(STORAGE_PRESETS) == {"hdd-slow", "ephemeral", "ssd", "raid0"}
        assert STORAGE_PRESETS["ssd"] > STORAGE_PRESETS["ephemeral"]
        assert STORAGE_PRESETS["raid0"] > STORAGE_PRESETS["ssd"]
        assert STORAGE_PRESETS["hdd-slow"] < STORAGE_PRESETS["ephemeral"]

    def test_with_storage_by_name(self):
        ssd = with_storage(SMALL, "ssd")
        assert ssd.disk_rate == STORAGE_PRESETS["ssd"]
        assert ssd.network_rate == SMALL.network_rate  # NIC untouched
        assert ssd.name == "small+ssd"
        assert SMALL.disk_rate == 100 * MB  # original unchanged

    def test_with_storage_by_rate(self):
        custom = with_storage(SMALL, 250 * MB)
        assert custom.disk_rate == 250 * MB
        assert "250" in custom.name

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError, match="unknown storage preset"):
            with_storage(SMALL, "floppy")

    def test_hdd_slow_is_slower_than_every_nic(self):
        # The preset exists precisely to make the disk the bottleneck.
        from repro.cluster import INSTANCE_CATALOG

        for itype in INSTANCE_CATALOG.values():
            assert STORAGE_PRESETS["hdd-slow"] < itype.network_rate
