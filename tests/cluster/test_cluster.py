"""Unit tests for instance catalog, disk, and node models."""

import pytest

from repro.cluster import (
    INSTANCE_CATALOG,
    LARGE,
    MEDIUM,
    SMALL,
    Disk,
    InstanceType,
    Node,
    build_custom,
    instance_by_name,
)
from repro.sim import Environment
from repro.units import GB, MB, mbps, to_mbps


@pytest.fixture()
def env():
    return Environment()


class TestInstanceCatalog:
    """Table I values must match the paper exactly."""

    def test_small(self):
        assert SMALL.memory == int(1.7 * GB)
        assert SMALL.ecus == 1
        assert to_mbps(SMALL.network_rate) == pytest.approx(216)

    def test_medium(self):
        assert MEDIUM.memory == int(3.75 * GB)
        assert MEDIUM.ecus == 2
        assert to_mbps(MEDIUM.network_rate) == pytest.approx(376)

    def test_large(self):
        assert LARGE.memory == int(7.5 * GB)
        assert LARGE.ecus == 4
        assert to_mbps(LARGE.network_rate) == pytest.approx(376)

    def test_medium_and_large_same_network(self):
        # §V-B.1: "the medium cluster and large cluster have the same
        # networking capacity"
        assert MEDIUM.network_rate == LARGE.network_rate

    def test_lookup(self):
        assert instance_by_name("SMALL") is SMALL
        with pytest.raises(KeyError):
            instance_by_name("xlarge")
        assert set(INSTANCE_CATALOG) == {"small", "medium", "large"}

    def test_production_faster_than_network(self):
        # §III-D's observed regime: T_c < P / B for every instance type.
        for itype in INSTANCE_CATALOG.values():
            assert itype.production_rate > itype.network_rate

    def test_validation(self):
        with pytest.raises(ValueError):
            InstanceType("bad", 0, 1, 1, 1, 1)
        with pytest.raises(ValueError):
            InstanceType("bad", 1, 1, 0, 1, 1)


class TestDisk:
    def test_write_duration(self, env):
        disk = Disk(env, rate=100 * MB)
        env.run(until=env.process(disk.write(200 * MB)))
        assert env.now == pytest.approx(2.0)
        assert disk.bytes_written == 200 * MB

    def test_writes_serialize(self, env):
        disk = Disk(env, rate=100 * MB)
        w1 = env.process(disk.write(100 * MB))
        w2 = env.process(disk.write(100 * MB))
        env.run(until=env.all_of([w1, w2]))
        assert env.now == pytest.approx(2.0)

    def test_invalid_rate_and_size(self, env):
        with pytest.raises(ValueError):
            Disk(env, rate=0)
        disk = Disk(env, rate=1)
        with pytest.raises(ValueError):
            env.run(until=env.process(disk.write(-1)))


class TestNode:
    def test_attributes(self, env):
        node = Node(env, "n1", SMALL, rack="rackA")
        assert node.nic.rate == SMALL.network_rate
        assert node.disk.rate == SMALL.disk_rate
        assert node.alive

    def test_empty_name_rejected(self, env):
        with pytest.raises(ValueError):
            Node(env, "", SMALL, rack="r")

    def test_produce_time(self, env):
        node = Node(env, "n1", SMALL, rack="r")
        size = 64 * MB
        env.run(until=env.process(node.produce(size)))
        assert env.now == pytest.approx(size / SMALL.production_rate)

    def test_fail_and_recover(self, env):
        node = Node(env, "n1", SMALL, rack="r")
        node.fail()
        assert not node.alive
        node.recover()
        assert node.alive


class TestBuildCustom:
    def test_explicit_layout(self, env):
        cluster = build_custom(
            env,
            datanode_specs=[
                ("fast1", LARGE, "rack0"),
                ("slow1", "small", "rack1"),
            ],
            client_instance="large",
        )
        assert cluster.datanode_host("slow1").instance is SMALL
        assert cluster.client_host.instance is LARGE
        assert cluster.topology.rack_of("fast1") == "rack0"

    def test_empty_specs_rejected(self, env):
        with pytest.raises(ValueError):
            build_custom(env, datanode_specs=[])
