"""Ablation A4: simulation packet-granularity sensitivity.

The experiments run at 4 MB simulated packets instead of Hadoop's 64 KB
wire packets to keep event counts tractable.  This bench demonstrates the
substitution is sound: upload times and the HDFS-vs-SMARTH improvement
are stable (within a few percent) across granularities.
"""

from conftest import run_experiment

from repro.experiments import experiment_config
from repro.experiments.report import ExperimentResult
from repro.units import GB, KB, MB
from repro.workloads import compare, two_rack


def ablation_granularity(scale: float) -> ExperimentResult:
    scenario = two_rack("small", throttle_mbps=50)
    # Granularity sweep is event-count-heavy at fine packets: use a fixed
    # 1 GB upload scaled only downward.
    size = int(min(1.0, 8 * scale) * GB)
    rows = []
    for packet in (256 * KB, MB, 4 * MB):
        config = experiment_config().with_hdfs(packet_size=packet)
        hdfs, smarth, improvement = compare(scenario, size, config=config)
        rows.append(
            {
                "packet": f"{packet // KB}KB",
                "hdfs_s": round(hdfs.duration, 1),
                "smarth_s": round(smarth.duration, 1),
                "improvement_pct": round(improvement, 1),
            }
        )
    spread = max(r["improvement_pct"] for r in rows) - min(
        r["improvement_pct"] for r in rows
    )
    return ExperimentResult(
        experiment_id="ablation_granularity",
        title="A4: packet-granularity sensitivity (small cluster, 50 Mbps)",
        columns=("packet", "hdfs_s", "smarth_s", "improvement_pct"),
        rows=rows,
        paper_claim={
            "claim": "Hadoop streams 64 KB packets; the simulation uses "
            "coarser packets — dynamics must be granularity-stable for "
            "that substitution to be sound"
        },
        measured={"improvement_spread_pp": round(spread, 1)},
    )


def test_ablation_granularity(benchmark, results_dir, scale):
    result = run_experiment(
        benchmark, results_dir, ablation_granularity, scale=scale
    )
    hdfs_times = [r["hdfs_s"] for r in result.rows]
    smarth_times = [r["smarth_s"] for r in result.rows]
    # Upload times stable across a 16x granularity change.
    assert max(hdfs_times) / min(hdfs_times) < 1.10
    assert max(smarth_times) / min(smarth_times) < 1.15
