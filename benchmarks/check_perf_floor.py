"""CI perf-floor gate: compare BENCH_*.json results against perf_floor.json.

Run after ``pytest benchmarks/bench_kernel.py benchmarks/bench_scale.py
benchmarks/bench_shard.py benchmarks/bench_campaign.py``:

    python benchmarks/check_perf_floor.py

Every top-level group in ``perf_floor.json`` (besides ``comment`` and
``tolerance``) names a results file — ``kernel`` → ``BENCH_kernel.json``,
``scale`` → ``BENCH_scale.json`` — whose sections are checked against the
group's limits.  Fails (exit 1) when a measured ``events_per_sec`` drops
more than the configured tolerance below its checked-in floor, or when a
machine-independent ratio (the packet-train ``event_reduction``, the
allocation-path ``speedup``) falls under its minimum.  Parallel-speedup
floors are gated on the machine being able to demonstrate them at all:
``min_cpus`` skips a section's ratio floors on small machines, and
``requires_no_gil`` skips them when the benchmark recorded
``gil_enabled`` true (a thread-pool drain cannot scale under the GIL).
Skips are loud — they appear in the detail lines and in the summary
table printed at the end.  Raising a floor is a normal part of landing a
perf win; lowering one is a perf regression and needs justification in
the PR.
"""

from __future__ import annotations

import json
import pathlib
import sys

BENCH_DIR = pathlib.Path(__file__).parent
RESULTS_DIR = BENCH_DIR / "results"
FLOORS = BENCH_DIR / "perf_floor.json"

#: Keys in a floor section that are hard minimums on a measured ratio
#: (machine-independent — no tolerance applied), mapped to the measured
#: key they check.
RATIO_FLOORS = {
    "min_event_reduction": "event_reduction",
    "min_speedup": "speedup",
}


def check_group(
    group: str, sections: dict, tolerance: float, rows: list
) -> list[str]:
    """Check one floors group against its ``BENCH_<group>.json``.

    Appends one ``(check, measured, floor, status)`` row per check to
    ``rows`` for the summary table; returns the failure messages.
    """
    results_path = RESULTS_DIR / f"BENCH_{group}.json"
    if not results_path.exists():
        rows.append((group, "-", "-", "MISSING"))
        return [
            f"missing {results_path}: run the benchmarks/bench_{group}* "
            "suite first"
        ]
    bench = json.loads(results_path.read_text())

    failures = []
    for section, limits in sections.items():
        measured = bench.get(section)
        if measured is None:
            rows.append((f"{group}.{section}", "-", "-", "MISSING"))
            failures.append(f"{group}.{section}: missing from {results_path.name}")
            continue
        floor_eps = limits.get("events_per_sec")
        if floor_eps is not None:
            allowed = floor_eps * (1.0 - tolerance)
            actual = measured.get("events_per_sec", 0)
            status = "ok" if actual >= allowed else "FAIL"
            print(
                f"{group}.{section}.events_per_sec: {actual} "
                f"(floor {floor_eps}, min allowed {allowed:.0f}) {status}"
            )
            rows.append(
                (
                    f"{group}.{section}.events_per_sec",
                    f"{actual}",
                    f">= {allowed:.0f}",
                    status,
                )
            )
            if actual < allowed:
                failures.append(
                    f"{group}.{section}.events_per_sec {actual} < {allowed:.0f}"
                )
        min_cpus = limits.get("min_cpus")
        cpus = measured.get("cpus")
        skip_reason = None
        if min_cpus is not None and cpus is not None and cpus < min_cpus:
            skip_reason = f"{cpus} cpus < min_cpus {min_cpus}"
        elif limits.get("requires_no_gil") and measured.get("gil_enabled", True):
            skip_reason = "gil enabled"
        for floor_key, measured_key in RATIO_FLOORS.items():
            minimum = limits.get(floor_key)
            if minimum is None:
                continue
            if skip_reason is not None:
                # A parallel-speedup floor is meaningless on a machine
                # that cannot physically parallelize (too few cores, or
                # a GIL serializing the thread pool) — report, don't
                # fail (CI runners satisfy min_cpus; laptops may not,
                # and stock CPython keeps its GIL).
                print(
                    f"{group}.{section}.{measured_key}: skipped "
                    f"({skip_reason})"
                )
                rows.append(
                    (
                        f"{group}.{section}.{measured_key}",
                        f"{measured.get(measured_key, 0.0)}x",
                        f">= {minimum}x",
                        f"skip ({skip_reason})",
                    )
                )
                continue
            actual = measured.get(measured_key, 0.0)
            status = "ok" if actual >= minimum else "FAIL"
            print(
                f"{group}.{section}.{measured_key}: {actual}x "
                f"(min {minimum}x) {status}"
            )
            rows.append(
                (
                    f"{group}.{section}.{measured_key}",
                    f"{actual}x",
                    f">= {minimum}x",
                    status,
                )
            )
            if actual < minimum:
                failures.append(
                    f"{group}.{section}.{measured_key} {actual} < {minimum}"
                )
    return failures


def print_summary(rows: list) -> None:
    """One line per check, aligned: check | measured | floor | status."""
    headers = ("check", "measured", "floor", "status")
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rows))
        for col in range(4)
    ]
    print("\nsummary:")
    print("  " + "  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  " + "  ".join("-" * w for w in widths))
    for row in rows:
        print("  " + "  ".join(c.ljust(w) for c, w in zip(row, widths)))


def main() -> int:
    floors = json.loads(FLOORS.read_text())
    tolerance = float(floors.get("tolerance", 0.30))

    failures = []
    rows: list[tuple[str, str, str, str]] = []
    for group, sections in floors.items():
        if group in ("comment", "tolerance"):
            continue
        failures.extend(check_group(group, sections, tolerance, rows))

    if rows:
        print_summary(rows)

    if failures:
        print("perf floor check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("perf floor check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
