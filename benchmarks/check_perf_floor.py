"""CI perf-floor gate: compare BENCH_*.json results against perf_floor.json.

Run after ``pytest benchmarks/bench_kernel.py benchmarks/bench_scale.py
benchmarks/bench_shard.py``:

    python benchmarks/check_perf_floor.py

Every top-level group in ``perf_floor.json`` (besides ``comment`` and
``tolerance``) names a results file — ``kernel`` → ``BENCH_kernel.json``,
``scale`` → ``BENCH_scale.json`` — whose sections are checked against the
group's limits.  Fails (exit 1) when a measured ``events_per_sec`` drops
more than the configured tolerance below its checked-in floor, or when a
machine-independent ratio (the packet-train ``event_reduction``, the
allocation-path ``speedup``) falls under its minimum.  Raising a floor is
a normal part of landing a perf win; lowering one is a perf regression
and needs justification in the PR.
"""

from __future__ import annotations

import json
import pathlib
import sys

BENCH_DIR = pathlib.Path(__file__).parent
RESULTS_DIR = BENCH_DIR / "results"
FLOORS = BENCH_DIR / "perf_floor.json"

#: Keys in a floor section that are hard minimums on a measured ratio
#: (machine-independent — no tolerance applied), mapped to the measured
#: key they check.
RATIO_FLOORS = {
    "min_event_reduction": "event_reduction",
    "min_speedup": "speedup",
}


def check_group(group: str, sections: dict, tolerance: float) -> list[str]:
    """Check one floors group against its ``BENCH_<group>.json``."""
    results_path = RESULTS_DIR / f"BENCH_{group}.json"
    if not results_path.exists():
        return [
            f"missing {results_path}: run the benchmarks/bench_{group}* "
            "suite first"
        ]
    bench = json.loads(results_path.read_text())

    failures = []
    for section, limits in sections.items():
        measured = bench.get(section)
        if measured is None:
            failures.append(f"{group}.{section}: missing from {results_path.name}")
            continue
        floor_eps = limits.get("events_per_sec")
        if floor_eps is not None:
            allowed = floor_eps * (1.0 - tolerance)
            actual = measured.get("events_per_sec", 0)
            status = "ok" if actual >= allowed else "FAIL"
            print(
                f"{group}.{section}.events_per_sec: {actual} "
                f"(floor {floor_eps}, min allowed {allowed:.0f}) {status}"
            )
            if actual < allowed:
                failures.append(
                    f"{group}.{section}.events_per_sec {actual} < {allowed:.0f}"
                )
        min_cpus = limits.get("min_cpus")
        cpus = measured.get("cpus")
        ratios_apply = not (
            min_cpus is not None
            and cpus is not None
            and cpus < min_cpus
        )
        for floor_key, measured_key in RATIO_FLOORS.items():
            minimum = limits.get(floor_key)
            if minimum is None:
                continue
            if not ratios_apply:
                # A parallel-speedup floor is meaningless on a machine
                # with fewer cores than the backend needs — report, don't
                # fail (CI runners satisfy min_cpus; laptops may not).
                print(
                    f"{group}.{section}.{measured_key}: skipped "
                    f"({cpus} cpus < min_cpus {min_cpus})"
                )
                continue
            actual = measured.get(measured_key, 0.0)
            status = "ok" if actual >= minimum else "FAIL"
            print(
                f"{group}.{section}.{measured_key}: {actual}x "
                f"(min {minimum}x) {status}"
            )
            if actual < minimum:
                failures.append(
                    f"{group}.{section}.{measured_key} {actual} < {minimum}"
                )
    return failures


def main() -> int:
    floors = json.loads(FLOORS.read_text())
    tolerance = float(floors.get("tolerance", 0.30))

    failures = []
    for group, sections in floors.items():
        if group in ("comment", "tolerance"):
            continue
        failures.extend(check_group(group, sections, tolerance))

    if failures:
        print("perf floor check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("perf floor check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
