"""CI perf-floor gate: compare BENCH_kernel.json against perf_floor.json.

Run after ``pytest benchmarks/bench_kernel.py``:

    python benchmarks/check_perf_floor.py

Fails (exit 1) when a measured ``events_per_sec`` drops more than the
configured tolerance below its checked-in floor, or when the packet-train
event reduction (machine-independent) falls under its minimum.  Raising a
floor is a normal part of landing a perf win; lowering one is a perf
regression and needs justification in the PR.
"""

from __future__ import annotations

import json
import pathlib
import sys

BENCH_DIR = pathlib.Path(__file__).parent
RESULTS = BENCH_DIR / "results" / "BENCH_kernel.json"
FLOORS = BENCH_DIR / "perf_floor.json"


def main() -> int:
    if not RESULTS.exists():
        print(f"missing {RESULTS}: run pytest benchmarks/bench_kernel.py first")
        return 1
    bench = json.loads(RESULTS.read_text())
    floors = json.loads(FLOORS.read_text())
    tolerance = float(floors.get("tolerance", 0.30))

    failures = []
    for section, limits in floors["kernel"].items():
        measured = bench.get(section)
        if measured is None:
            failures.append(f"{section}: missing from {RESULTS.name}")
            continue
        floor_eps = limits.get("events_per_sec")
        if floor_eps is not None:
            allowed = floor_eps * (1.0 - tolerance)
            actual = measured.get("events_per_sec", 0)
            status = "ok" if actual >= allowed else "FAIL"
            print(
                f"{section}.events_per_sec: {actual} "
                f"(floor {floor_eps}, min allowed {allowed:.0f}) {status}"
            )
            if actual < allowed:
                failures.append(
                    f"{section}.events_per_sec {actual} < {allowed:.0f}"
                )
        min_reduction = limits.get("min_event_reduction")
        if min_reduction is not None:
            actual = measured.get("event_reduction", 0.0)
            status = "ok" if actual >= min_reduction else "FAIL"
            print(
                f"{section}.event_reduction: {actual}x "
                f"(min {min_reduction}x) {status}"
            )
            if actual < min_reduction:
                failures.append(
                    f"{section}.event_reduction {actual} < {min_reduction}"
                )

    if failures:
        print("perf floor check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("perf floor check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
