"""Policy head-to-head: the online tuner vs the paper's fixed constants.

Three sections, written to ``benchmarks/results/BENCH_policy.json`` and
checked by the ``policy`` group in ``perf_floor.json``:

* ``fig5_guard`` — the fig5 sweep (the paper's headline experiment) run
  under the default policy and again under one shared
  :class:`~repro.policy.tuner.OnlineTunerPolicy` instance.  Both totals
  are *simulated* seconds, so the ratio is machine-independent and a
  hard floor: the tuner must not regress fig5 by more than 5 %
  (``min_speedup`` 0.95, speedup = default / tuner).
* ``heterogeneous`` — the workload the tuner was built for: repeated
  multi-block uploads on one long-lived heterogeneous cluster, where
  the client's speed records persist and the Algorithm 2 threshold of
  0.8 keeps spending 20 % of block starts on exploration swaps long
  after there is anything left to learn.  The tuner probes its grid and
  settles on pure exploitation (threshold 1.0), beating the fixed 0.8
  — the ISSUE's acceptance ratio, floored at ``min_speedup`` 1.0.
* ``chaos`` — fixed-seed fault campaigns under every registered policy.
  No ratio here; the assertion is that adaptivity never costs
  durability (every campaign all green).

Simulations are deterministic: every ratio above is exactly
reproducible, unlike the wall-clock ratios elsewhere in the suite.
"""

from __future__ import annotations

import time

from conftest import write_bench_json

from repro.config import SimulationConfig
from repro.experiments import fig5
from repro.faults import run_campaign
from repro.policy import OnlineTunerPolicy, policy_names, use_policy
from repro.smarth import SmarthDeployment
from repro.units import MB
from repro.workloads import heterogeneous

#: Repeated-upload workload shape (fixed — the signal needs multi-block
#: files and a warm speed registry, not the paper's 8 GB points, so the
#: smoke REPRO_BENCH_SCALE does not shrink it).
UPLOADS = 12
FILE_BYTES = 64 * MB
BLOCK_BYTES = 8 * MB

#: Chaos head-to-head shape (matches the chaos-smoke CI job's order of
#: magnitude; small enough for perf-smoke).
CHAOS_SEED = 7
CHAOS_RUNS = 2
CHAOS_SCALE = 0.25


def _upload_series(policy) -> float:
    """Total simulated seconds for ``UPLOADS`` sequential uploads on one
    long-lived heterogeneous SMARTH deployment."""
    config = SimulationConfig().with_hdfs(block_size=BLOCK_BYTES)
    env, cluster = heterogeneous().make(config)
    deployment = SmarthDeployment(cluster, policy=policy)
    client = deployment.client()
    total = 0.0
    for index in range(UPLOADS):
        result = env.run(
            until=env.process(client.put(f"/data/f{index}", FILE_BYTES))
        )
        total += result.duration
    return total


def test_policy_fig5_guard(benchmark, results_dir, scale):
    """fig5 under the tuner: within 5 % of (here: ahead of) the default."""
    default = benchmark.pedantic(
        lambda: fig5(scale=scale), rounds=1, iterations=1
    )
    tuner = OnlineTunerPolicy()
    with use_policy(tuner):
        tuned = fig5(scale=scale)

    default_total = sum(r["smarth_s"] for r in default.rows)
    tuner_total = sum(r["smarth_s"] for r in tuned.rows)
    speedup = default_total / tuner_total if tuner_total > 0 else 0.0

    lines = [
        f"fig5 guard (scale {scale:g}, {len(default.rows)} points)",
        f"default policy total : {default_total:.1f} simulated s",
        f"tuner policy total   : {tuner_total:.1f} simulated s",
        f"speedup              : {speedup:.4f}x (floor 0.95x)",
    ]
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    (results_dir / "policy_fig5_guard.txt").write_text(text)

    write_bench_json(
        results_dir,
        "policy",
        "fig5_guard",
        {
            "scale": scale,
            "points": len(default.rows),
            "default_total_simulated_s": round(default_total, 1),
            "tuner_total_simulated_s": round(tuner_total, 1),
            "speedup": round(speedup, 4),
        },
    )
    benchmark.extra_info["speedup"] = round(speedup, 4)
    assert speedup >= 0.95, (
        f"tuner regressed fig5 by {(1 - speedup) * 100:.1f}% (>5% budget)"
    )


def test_policy_heterogeneous_head_to_head(benchmark, results_dir):
    """Repeated uploads, warm records: the tuner beats fixed 0.8."""
    default_total = benchmark.pedantic(
        lambda: _upload_series(None), rounds=1, iterations=1
    )
    tuner = OnlineTunerPolicy()
    tuner_total = _upload_series(tuner)

    (client,) = tuner._uploads
    chosen = tuner.chosen(client)
    speedup = default_total / tuner_total if tuner_total > 0 else 0.0
    win_pct = (default_total / tuner_total - 1.0) * 100

    lines = [
        f"heterogeneous head-to-head ({UPLOADS} uploads x "
        f"{FILE_BYTES // MB} MB, {BLOCK_BYTES // MB} MB blocks)",
        f"fixed 0.8 total  : {default_total:.3f} simulated s",
        f"tuner total      : {tuner_total:.3f} simulated s",
        f"tuner advantage  : {win_pct:.2f}% ({speedup:.4f}x, floor 1.0x)",
        f"chosen threshold : {chosen.local_opt_threshold}",
    ]
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    (results_dir / "policy_heterogeneous.txt").write_text(text)

    write_bench_json(
        results_dir,
        "policy",
        "heterogeneous",
        {
            "uploads": UPLOADS,
            "file_bytes": FILE_BYTES,
            "block_bytes": BLOCK_BYTES,
            "default_total_simulated_s": round(default_total, 3),
            "tuner_total_simulated_s": round(tuner_total, 3),
            "speedup": round(speedup, 4),
            "win_pct": round(win_pct, 2),
            "chosen_threshold": chosen.local_opt_threshold,
        },
    )
    benchmark.extra_info["speedup"] = round(speedup, 4)
    benchmark.extra_info["chosen_threshold"] = chosen.local_opt_threshold
    # The acceptance claim: probe-then-exploit beats the fixed constant
    # on at least this workload, probing cost included.
    assert tuner_total < default_total, (
        f"tuner ({tuner_total:.3f}s) did not beat fixed 0.8 "
        f"({default_total:.3f}s)"
    )


def test_policy_chaos_head_to_head(benchmark, results_dir):
    """Every registered policy survives the same fault campaign green."""
    reports = {}

    def run_all_policies():
        for name in policy_names():
            start = time.perf_counter()
            report = run_campaign(
                CHAOS_SEED,
                CHAOS_RUNS,
                protocols=("hdfs", "smarth"),
                scale=CHAOS_SCALE,
                policy=name,
            )
            reports[name] = (report, time.perf_counter() - start)
        return reports

    benchmark.pedantic(run_all_policies, rounds=1, iterations=1)

    lines = [
        f"chaos head-to-head (seed {CHAOS_SEED}, {CHAOS_RUNS} runs x "
        f"2 protocols, scale {CHAOS_SCALE:g})"
    ]
    payload = {"seed": CHAOS_SEED, "runs": CHAOS_RUNS, "scale": CHAOS_SCALE}
    for name, (report, wall) in sorted(reports.items()):
        violations = sum(
            tally["violations"]
            for tally in report["invariant_totals"].values()
        )
        lines.append(
            f"{name:10s}: all_green={report['all_green']} "
            f"violations={violations} wall={wall:.2f}s"
        )
        payload[name] = {
            "all_green": report["all_green"],
            "violations": violations,
            "wall_seconds": round(wall, 2),
        }
        assert report["all_green"], f"policy {name} went red under chaos"
        assert violations == 0

    text = "\n".join(lines) + "\n"
    print("\n" + text)
    (results_dir / "policy_chaos.txt").write_text(text)
    write_bench_json(results_dir, "policy", "chaos", payload)
