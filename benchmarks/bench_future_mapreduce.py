"""Future-work F1: SMARTH's impact on MapReduce jobs (§VII).

The paper asks whether its ingest optimization pays off end-to-end.  We
upload a dataset through each protocol on the throttled two-rack cluster,
then run a data-local map phase over it, and compare:

* job duration + locality for HDFS- vs SMARTH-ingested data (both files
  are fully replicated, so the job should be unaffected);
* total ingest+analyze time (SMARTH's ingest win should carry through).
"""

from conftest import run_experiment

from repro.experiments import experiment_config
from repro.experiments.report import ExperimentResult
from repro.hdfs import HdfsDeployment
from repro.mapred import JobConfig, MapRunner
from repro.smarth import SmarthDeployment
from repro.units import GB, MB
from repro.workloads import two_rack


def ingest_then_analyze(scale: float) -> ExperimentResult:
    config = experiment_config()
    scenario = two_rack("small", throttle_mbps=50)
    size = int(8 * GB * scale)
    job_config = JobConfig(map_slots_per_node=2, compute_rate=50 * MB)

    rows = []
    measured = {}
    for system in ("hdfs", "smarth"):
        env, cluster = scenario.make(config)
        deployment = (
            SmarthDeployment(cluster)
            if system == "smarth"
            else HdfsDeployment(cluster)
        )
        client = deployment.client()
        write = env.run(until=env.process(client.put("/input", size)))
        env.run(until=env.now + 1)
        assert deployment.namenode.file_fully_replicated("/input")

        runner = MapRunner(deployment, job_config)
        job = env.run(until=env.process(runner.run("/input")))

        rows.append(
            {
                "system": system,
                "ingest_s": round(write.duration, 1),
                "job_s": round(job.duration, 1),
                "total_s": round(write.duration + job.duration, 1),
                "locality_pct": round(job.locality_fraction * 100, 1),
            }
        )
        measured[f"{system}_total"] = f"{write.duration + job.duration:.0f}s"

    hdfs_row, smarth_row = rows
    measured["end_to_end_improvement"] = (
        f"{(hdfs_row['total_s'] / smarth_row['total_s'] - 1) * 100:.0f}%"
    )
    return ExperimentResult(
        experiment_id="future_mapreduce",
        title="F1: ingest + map-phase end-to-end (small cluster, 50 Mbps)",
        columns=("system", "ingest_s", "job_s", "total_s", "locality_pct"),
        rows=rows,
        paper_claim={
            "claim": "§VII: 'we plan to investigate SMARTH's impact on "
            "MapReduce jobs and tasks' — hypothesis: the ingest win "
            "carries through to ingest+analyze pipelines without hurting "
            "the job itself"
        },
        measured=measured,
    )


def test_future_mapreduce(benchmark, results_dir, scale):
    result = run_experiment(benchmark, results_dir, ingest_then_analyze, scale=scale)
    hdfs_row = next(r for r in result.rows if r["system"] == "hdfs")
    smarth_row = next(r for r in result.rows if r["system"] == "smarth")

    # Both ingests yield fully-local jobs.
    assert hdfs_row["locality_pct"] == 100.0
    assert smarth_row["locality_pct"] == 100.0
    if scale >= 0.9:
        # At full scale (128 tasks over 9 nodes) task volume evens out
        # SMARTH's slightly more concentrated replica placement; at small
        # scales the handful of tasks can land unevenly.
        assert smarth_row["job_s"] < hdfs_row["job_s"] * 1.3

    # The ingest advantage dominates the end-to-end total.
    assert smarth_row["total_s"] < hdfs_row["total_s"]
