"""Figure 9: improvement vs throttle level for all three cluster types.

Shape: improvement decreases monotonically as the throttle is relaxed,
for every cluster.
"""

from conftest import run_experiment

from repro.experiments import fig9


def test_fig9(benchmark, results_dir, scale):
    result = run_experiment(benchmark, results_dir, fig9, scale=scale)
    if scale >= 0.9:
        # Full scale: strictly monotone for every cluster (paper's claim).
        for cluster in ("small", "medium", "large"):
            assert result.measured[f"{cluster}_monotone_decreasing"], (
                f"{cluster}: improvement should fall as the throttle relaxes"
            )
    else:
        # Reduced scale: the speed-learning warm-up adds noise; require
        # the endpoint ordering (50 Mbps beats 150 Mbps) per cluster.
        for cluster in ("small", "medium", "large"):
            imps = [
                r["improvement_pct"]
                for r in result.rows
                if r["cluster"] == cluster
            ]
            assert imps[0] > imps[-1]
    # Every throttled point shows a real win.
    assert all(r["improvement_pct"] > 0 for r in result.rows)
