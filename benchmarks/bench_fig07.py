"""Figure 7: medium cluster, cross-rack throttle sweep (8 GB uploads).

Paper: 225% improvement at 50 Mbps.  Shape: medium gains exceed the small
cluster's at matching throttles (faster NIC → more headroom for the
multi-pipeline client).
"""

from conftest import run_experiment

from repro.experiments import fig6, fig7


def test_fig7(benchmark, results_dir, scale):
    result = run_experiment(benchmark, results_dir, fig7, scale=scale)
    imps = {r["label"]: r["improvement_pct"] for r in result.rows}
    assert imps["50Mbps"] > imps["150Mbps"] > 0
    assert imps["50Mbps"] > 60

    # Medium beats small at mid throttles (Figure 7 vs Figure 6).
    small = fig6(scale=scale, throttles=(100,))
    small_imp = small.rows[0]["improvement_pct"]
    assert imps["100Mbps"] > small_imp
