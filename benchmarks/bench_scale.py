"""Multi-tenant scale benchmark: many clients × large clusters.

Not a paper figure — this measures the simulator's *cluster-scale fast
path*: the cached :class:`SpeedRegistry` ranking behind Algorithm 1's
``choose_targets`` and the lazy-cancellation tombstone scheduler.  Three
workloads:

* ``scale64`` — 64 staggered SMARTH clients on a 240-datanode two-rack
  cluster, run twice: with the fast paths on, and in *legacy mode* (the
  uncached reference registry plus the pre-tombstone scheduler).  Both
  runs must produce an identical simulated timeline — every client's
  (start, end) — which is asserted, not assumed; the wall-clock ratio is
  recorded as ``end_to_end_speedup``.
* ``scale256`` — 256 staggered clients on a 60-datanode cluster, the
  high-tenancy end of the range; records throughput for the floor check.
* ``allocation`` — the per-``add_block`` allocation path in isolation at
  the scale64 cluster shape (240 datanodes, warm registry, §IV-C-sized
  exclusion sets), measured against a verbatim copy of the pre-PR
  ``choose_targets`` running on the uncached registry.  Both must pick
  identical targets from identical RNG streams (asserted per call); the
  per-call latency ratio is the headline ``speedup`` and must be ≥ 3x.
  The reference still benefits from today's cached live-datanode list,
  so the measured ratio *understates* the true pre-PR gap.

Writes ``benchmarks/results/BENCH_scale.json``; the CI perf-smoke job
checks it against ``perf_floor.json``.
"""

from __future__ import annotations

import gc
import random
import time

from conftest import write_bench_json

from repro.config import HdfsConfig, SimulationConfig
from repro.hdfs.datanode_manager import DatanodeManager
from repro.hdfs.namenode import (
    Namenode,
    SpeedRegistry,
    UncachedSpeedRegistry,
)
from repro.hdfs.protocol import NoDatanodesAvailable
from repro.net import Topology
from repro.sim import Environment, total_events_processed
from repro.smarth import SmarthPlacementPolicy
from repro.units import KB, MB
from repro.workloads import run_concurrent_uploads, two_rack

# ---------------------------------------------------------------------------
# End-to-end workloads


def _run_workload(n_clients, n_datanodes, file_bytes, stagger):
    """One staggered multi-tenant run; returns (timeline, events, wall)."""
    config = SimulationConfig().with_hdfs(
        block_size=256 * KB, packet_size=64 * KB, heartbeat_interval=0.5
    )
    scenario = two_rack(
        "small", n_datanodes=n_datanodes, n_extra_clients=n_clients - 1
    )
    events_before = total_events_processed()
    wall_start = time.perf_counter()
    outcome = run_concurrent_uploads(
        scenario,
        "smarth",
        [file_bytes] * n_clients,
        config=config,
        stagger=stagger,
    )
    wall = time.perf_counter() - wall_start
    events = total_events_processed() - events_before
    timeline = [(r.start, r.end) for r in outcome.results]
    return timeline, events, wall


def _legacy_mode():
    """Install the pre-fast-path reference implementations."""
    Environment.LAZY_CANCELLATION = False
    Namenode.speed_registry_factory = UncachedSpeedRegistry


def _fast_mode():
    Environment.LAZY_CANCELLATION = True
    Namenode.speed_registry_factory = SpeedRegistry


def test_scale_64_clients(benchmark, results_dir, scale):
    """64 tenants, 240 datanodes: identical timeline, lower wall clock."""
    n_clients, n_datanodes = 64, 240
    file_bytes = max(512 * KB, int(16 * MB * scale))
    stagger = 0.05

    try:
        _legacy_mode()
        legacy_timeline, legacy_events, legacy_wall = _run_workload(
            n_clients, n_datanodes, file_bytes, stagger
        )
    finally:
        _fast_mode()
    timeline, events, wall = benchmark.pedantic(
        lambda: _run_workload(n_clients, n_datanodes, file_bytes, stagger),
        rounds=1,
        iterations=1,
    )

    events_per_sec = round(events / wall) if wall > 0 else 0
    legacy_eps = round(legacy_events / legacy_wall) if legacy_wall > 0 else 0
    speedup = legacy_wall / wall if wall > 0 else 0.0
    makespan = max(e for _s, e in timeline) - min(s for s, _e in timeline)

    text = (
        "scale64 workload (64 staggered SMARTH clients, 240 datanodes)\n"
        f"file bytes/client     : {file_bytes}\n"
        f"makespan (simulated)  : {makespan:.6f}\n"
        f"fast heap events      : {events}\n"
        f"legacy heap events    : {legacy_events}\n"
        f"fast wall seconds     : {wall:.3f}\n"
        f"legacy wall seconds   : {legacy_wall:.3f}\n"
        f"fast events_per_sec   : {events_per_sec}\n"
        f"legacy events_per_sec : {legacy_eps}\n"
        f"end_to_end_speedup    : {speedup:.2f}x\n"
    )
    print("\n" + text)
    (results_dir / "scale64.txt").write_text(text)
    write_bench_json(
        results_dir,
        "scale",
        "scale64",
        {
            "n_clients": n_clients,
            "n_datanodes": n_datanodes,
            "file_bytes": file_bytes,
            "stagger": stagger,
            "makespan": makespan,
            "events_processed": events,
            "wall_seconds": round(wall, 3),
            "events_per_sec": events_per_sec,
            "legacy_events_processed": legacy_events,
            "legacy_wall_seconds": round(legacy_wall, 3),
            "legacy_events_per_sec": legacy_eps,
            "end_to_end_speedup": round(speedup, 2),
            "timeline_identical": timeline == legacy_timeline,
        },
    )
    benchmark.extra_info["events_per_sec"] = events_per_sec
    benchmark.extra_info["end_to_end_speedup"] = round(speedup, 2)

    # The fast paths must not move a single client's simulated timeline.
    assert timeline == legacy_timeline


def test_scale_256_clients(benchmark, results_dir, scale):
    """256 tenants, 60 datanodes: the high-tenancy end of the range."""
    n_clients, n_datanodes = 256, 60
    file_bytes = max(512 * KB, int(4 * MB * scale))
    stagger = 0.02

    timeline, events, wall = benchmark.pedantic(
        lambda: _run_workload(n_clients, n_datanodes, file_bytes, stagger),
        rounds=1,
        iterations=1,
    )
    events_per_sec = round(events / wall) if wall > 0 else 0
    makespan = max(e for _s, e in timeline) - min(s for s, _e in timeline)

    text = (
        "scale256 workload (256 staggered SMARTH clients, 60 datanodes)\n"
        f"file bytes/client   : {file_bytes}\n"
        f"makespan (simulated): {makespan:.6f}\n"
        f"heap events         : {events}\n"
        f"wall seconds        : {wall:.3f}\n"
        f"events_per_sec      : {events_per_sec}\n"
    )
    print("\n" + text)
    (results_dir / "scale256.txt").write_text(text)
    write_bench_json(
        results_dir,
        "scale",
        "scale256",
        {
            "n_clients": n_clients,
            "n_datanodes": n_datanodes,
            "file_bytes": file_bytes,
            "stagger": stagger,
            "makespan": makespan,
            "events_processed": events,
            "wall_seconds": round(wall, 3),
            "events_per_sec": events_per_sec,
        },
    )
    benchmark.extra_info["events_per_sec"] = events_per_sec
    assert len(timeline) == n_clients


# ---------------------------------------------------------------------------
# Allocation fast path vs the pre-PR reference implementation


class _ReferencePlacement(SmarthPlacementPolicy):
    """Verbatim pre-PR ``choose_targets`` — the benchmark's baseline.

    Kept byte-for-byte (including the per-element ``set(...)`` rebuilds
    inside comprehension conditions that made it quadratic in datanode
    count) so the speedup below measures the real before/after, and the
    per-call equivalence assertion proves the rewrite draws the same RNG
    stream and picks the same targets.
    """

    def choose_targets(self, client, replication, excluded=()):
        if replication < 1:
            raise ValueError("replication must be >= 1")
        excluded_set = set(excluded)
        live = self.datanodes.live_datanodes()
        available = [d for d in live if d not in excluded_set]
        if not available:
            raise NoDatanodesAvailable("no live datanodes available")
        replication = min(replication, len(available))

        n = max(1, len(live) // max(1, self.replication))
        top_global = self.speeds.top_n(client, n, among=live) if self.enabled else []
        if not top_global:
            self.fallback_selections += 1
            return self.fallback.choose_targets(client, replication, excluded_set)
        if len(top_global) < n:
            unmeasured = [d for d in live if d not in set(top_global)]
            self.rng.shuffle(unmeasured)
            top_global = top_global + unmeasured[: n - len(top_global)]

        top_n = [d for d in top_global if d in set(available)]
        if not top_n:
            ranked = self.speeds.top_n(client, len(available), among=available)
            unmeasured = [d for d in available if d not in set(ranked)]
            self.rng.shuffle(unmeasured)
            top_n = (ranked + unmeasured)[:1]

        self.topn_selections += 1
        targets = []

        first = self._pick(self.rng, top_n)
        targets.append(first)

        if len(targets) < replication:
            first_rack = self.topology.rack_of(first)
            remaining = [d for d in available if d not in targets]
            remote = [
                d for d in remaining if self.topology.rack_of(d) != first_rack
            ]
            targets.append(self._pick(self.rng, remote or remaining))

        if len(targets) < replication:
            second_rack = self.topology.rack_of(targets[1])
            remaining = [d for d in available if d not in targets]
            same = [
                d for d in remaining if self.topology.rack_of(d) == second_rack
            ]
            targets.append(self._pick(self.rng, same or remaining))

        while len(targets) < replication:
            remaining = [d for d in available if d not in targets]
            targets.append(self._pick(self.rng, remaining))

        return tuple(targets)


def _make_policy(policy_cls, registry_cls, n_datanodes, seed=11):
    """A standalone warm policy at the scale64 cluster shape."""
    env = Environment()
    racks = {"rack0": [], "rack1": []}
    for i in range(n_datanodes):
        racks[f"rack{i % 2}"].append(f"dn{i:03d}")
    topo = Topology.from_rack_map(racks)
    manager = DatanodeManager(env, HdfsConfig())
    for rack, hosts in racks.items():
        for host in hosts:
            manager.register(host, rack)
    registry = registry_cls()
    # Warm mid-run registry: two heartbeats covered 2/3 of the cluster.
    registry.update(
        "client",
        {f"dn{i:03d}": 1000.0 + (i * 37 % 240) for i in range(0, n_datanodes, 3)},
    )
    registry.update(
        "client",
        {f"dn{i:03d}": 1000.0 + (i * 37 % 240) for i in range(1, n_datanodes, 3)},
    )
    return policy_cls(topo, manager, registry, random.Random(seed), 3)


def _drive(policy, n_datanodes, calls):
    """Time ``calls`` allocations under §IV-C-sized exclusion sets."""
    rng = random.Random(5)
    names = [f"dn{i:03d}" for i in range(n_datanodes)]
    excluded = [
        set(rng.sample(names, int(n_datanodes * 0.6))) for _ in range(64)
    ]
    picks = []
    # Collect leftovers from earlier (simulation-heavy) tests and keep the
    # collector out of the timed loop: one stray gen-2 pass over a big
    # surviving heap would swamp the ~50µs/call being measured here.
    gc.collect()
    gc.disable()
    try:
        wall_start = time.perf_counter()
        for i in range(calls):
            picks.append(
                policy.choose_targets("client", 3, excluded=excluded[i % 64])
            )
        wall = time.perf_counter() - wall_start
    finally:
        gc.enable()
    return picks, wall


def test_allocation_fast_path(benchmark, results_dir):
    """choose_targets at 240 datanodes: ≥3x over the pre-PR reference."""
    calls = 2000
    reference = _make_policy(_ReferencePlacement, UncachedSpeedRegistry, 240)
    ref_picks, ref_wall = _drive(reference, 240, calls)

    fast = _make_policy(SmarthPlacementPolicy, SpeedRegistry, 240)
    picks, wall = benchmark.pedantic(
        lambda: _drive(fast, 240, calls), rounds=1, iterations=1
    )

    # Same RNG seed, same targets, call for call — the fast path is a
    # pure optimization of the reference, proven here, not assumed.
    assert picks == ref_picks

    small_fast = _make_policy(SmarthPlacementPolicy, SpeedRegistry, 60)
    _, small_wall = _drive(small_fast, 60, calls)
    small_ref = _make_policy(_ReferencePlacement, UncachedSpeedRegistry, 60)
    _, small_ref_wall = _drive(small_ref, 60, calls)

    per_call_us = wall / calls * 1e6
    ref_per_call_us = ref_wall / calls * 1e6
    speedup = ref_wall / wall if wall > 0 else 0.0
    growth_fast = wall / small_wall if small_wall > 0 else 0.0
    growth_ref = ref_wall / small_ref_wall if small_ref_wall > 0 else 0.0

    text = (
        "allocation fast path (choose_targets, warm registry)\n"
        f"calls                  : {calls}\n"
        f"fast us/call @240dn    : {per_call_us:.1f}\n"
        f"reference us/call @240 : {ref_per_call_us:.1f}\n"
        f"speedup                : {speedup:.1f}x\n"
        f"cost growth 60->240dn  : fast {growth_fast:.1f}x, "
        f"reference {growth_ref:.1f}x\n"
    )
    print("\n" + text)
    (results_dir / "scale_allocation.txt").write_text(text)
    write_bench_json(
        results_dir,
        "scale",
        "allocation",
        {
            "n_datanodes": 240,
            "calls": calls,
            "per_call_us": round(per_call_us, 1),
            "reference_per_call_us": round(ref_per_call_us, 1),
            "speedup": round(speedup, 2),
            "cost_growth_60_to_240_fast": round(growth_fast, 2),
            "cost_growth_60_to_240_reference": round(growth_ref, 2),
            "targets_identical": picks == ref_picks,
        },
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)

    # The headline scale claim: the allocation path this PR rewrote is at
    # least 3x faster at the 240-datanode cluster shape.
    assert speedup >= 3.0
