"""Figure 10: small cluster, 0-5 datanodes throttled to 50 Mbps (8 GB).

Paper: one slow node already yields a 78% SMARTH win; HDFS degrades
steeply with more slow nodes.
"""

from conftest import run_experiment

from repro.experiments import fig10


def test_fig10(benchmark, results_dir, scale):
    result = run_experiment(benchmark, results_dir, fig10, scale=scale)
    rows = {r["slow_nodes"]: r for r in result.rows}

    # HDFS time grows monotonically with the slow-node count.
    hdfs_times = [rows[k]["hdfs_s"] for k in sorted(rows)]
    assert hdfs_times == sorted(hdfs_times)

    # One slow node is enough for a large win (paper: 78%).
    assert rows[1]["improvement_pct"] > 30
    # SMARTH's advantage at k>=1 always beats the contention-free case.
    for k in range(1, 6):
        assert rows[k]["improvement_pct"] > rows[0]["improvement_pct"]
