"""Ablations A1/A2: how much do Algorithms 1 and 2 actually contribute?

A1 — global optimization on/off: with Algorithm 1 disabled the namenode
falls back to default placement, so the first datanode is random and the
client frequently streams across the throttled boundary.

A2 — local-optimization threshold sweep: threshold 1.0 disables the
exploratory swap entirely (stale speed records never refresh); 0.0 swaps
every pipeline (first datanode effectively random again).  The paper's
0.8 sits between.
"""

from conftest import run_experiment

from repro.experiments import experiment_config
from repro.experiments.report import ExperimentResult
from repro.units import GB
from repro.workloads import run_upload, two_rack


def _run(config, scale):
    scenario = two_rack("small", throttle_mbps=50)
    outcome = run_upload(scenario, "smarth", int(8 * GB * scale), config=config)
    assert outcome.fully_replicated
    return outcome.duration


def ablation_optimizers(scale: float) -> ExperimentResult:
    base = experiment_config()
    rows = []
    durations = {}
    variants = {
        "full SMARTH (paper)": base,
        "global opt OFF": base.with_smarth(enable_global_opt=False),
        "local opt OFF": base.with_smarth(enable_local_opt=False),
        "both optimizers OFF": base.with_smarth(
            enable_global_opt=False, enable_local_opt=False
        ),
        "threshold=1.0 (never swap)": base.with_smarth(local_opt_threshold=1.0),
        "threshold=0.0 (always swap)": base.with_smarth(local_opt_threshold=0.0),
    }
    for label, config in variants.items():
        durations[label] = _run(config, scale)
        rows.append({"variant": label, "smarth_s": round(durations[label], 1)})
    return ExperimentResult(
        experiment_id="ablation_optimizers",
        title="A1/A2: contribution of the global and local optimizers "
        "(small cluster, 50 Mbps two-rack throttle)",
        columns=("variant", "smarth_s"),
        rows=rows,
        paper_claim={
            "claim": "Algorithm 1 picks a fast first datanode; Algorithm 2 "
            "keeps its records fresh via occasional swaps (threshold 0.8)"
        },
        measured={
            "both_off_penalty": round(
                durations["both optimizers OFF"]
                / durations["full SMARTH (paper)"],
                2,
            ),
            "local_off_penalty": round(
                durations["local opt OFF"] / durations["full SMARTH (paper)"], 2
            ),
            "never_swap_penalty": round(
                durations["threshold=1.0 (never swap)"]
                / durations["full SMARTH (paper)"],
                2,
            ),
            "always_swap_penalty": round(
                durations["threshold=0.0 (always swap)"]
                / durations["full SMARTH (paper)"],
                2,
            ),
        },
        notes="Reproduction finding: the asynchronous multi-pipeline "
        "protocol delivers most of SMARTH's gain — 'both optimizers OFF' "
        "(random first datanode) lands close to the full design, because "
        "the §IV-C disjointness rule forces rotation over all datanodes "
        "regardless.  The optimizers' real job is avoiding pathologies: "
        "exploitation without exploration (local opt OFF, or threshold "
        "1.0) locks onto stale speed records and is far slower, and "
        "always swapping (threshold 0.0) degenerates to random-or-worse. "
        "The paper's combination is the best configuration measured.",
    )


def test_ablation_optimizers(benchmark, results_dir, scale):
    result = run_experiment(benchmark, results_dir, ablation_optimizers, scale=scale)
    durations = {r["variant"]: r["smarth_s"] for r in result.rows}
    full = durations["full SMARTH (paper)"]
    # The paper's configuration is the best one measured (small slack for
    # warm-up noise at reduced scale).
    assert full <= min(durations.values()) * 1.05
    penalty = 1.4 if scale >= 0.9 else 1.1
    # Exploitation without exploration locks onto stale records.
    assert durations["local opt OFF"] > full * penalty
    assert durations["threshold=1.0 (never swap)"] > full * penalty
    # Pure exploration degenerates toward (or below) random choice.
    assert durations["threshold=0.0 (always swap)"] > full * penalty
    # Random-first SMARTH still works: the multi-pipeline protocol itself
    # carries most of the win (see notes) — sanity-bound it.
    assert durations["both optimizers OFF"] < full * 1.3
