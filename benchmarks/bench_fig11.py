"""Figure 11(a)(b): medium and large clusters, 0-5 slow (50 Mbps) nodes.

Paper: 167% at one slow node (medium); medium ≈ large throughout.
"""

import pytest
from conftest import run_experiment

from repro.experiments import fig11


def test_fig11(benchmark, results_dir, scale):
    result = run_experiment(benchmark, results_dir, fig11, scale=scale)
    medium = {r["slow_nodes"]: r for r in result.rows if r["cluster"] == "medium"}
    large = {r["slow_nodes"]: r for r in result.rows if r["cluster"] == "large"}

    # A single slow node hurts the faster clusters even more than small
    # (bigger gap between default and throttled bandwidth).
    assert medium[1]["improvement_pct"] > 40

    # Medium and large behave alike (equal network capacity).
    for k in medium:
        assert medium[k]["hdfs_s"] == pytest.approx(large[k]["hdfs_s"], rel=0.2)

    # Monotone HDFS degradation.
    hdfs_times = [medium[k]["hdfs_s"] for k in sorted(medium)]
    assert hdfs_times == sorted(hdfs_times)
