"""Kernel microbenchmark: raw event throughput of the simulation core.

Not a paper figure — this measures the discrete-event engine itself so
perf work on the hot loop (the analytic channel fast path, the sync
store completions) has a number to move.  The workload exercises the
primitives the packet pipeline leans on: timeouts, analytic channel
transfers, and store put/get handoffs between producer/consumer pairs.

Writes events/sec to ``benchmarks/results/kernel.txt`` and attaches it
to pytest-benchmark's ``extra_info``.
"""

import time

from conftest import write_bench_json

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.hdfs import HdfsClient, HdfsDeployment
from repro.sim import (
    Channel,
    Environment,
    ProcessGenerator,
    Store,
    total_events_processed,
)
from repro.units import KB, MB

#: Concurrent producer/consumer pairs; enough to keep the heap non-trivial.
PAIRS = 20
#: Transfers each producer pushes through its channel.
TRANSFERS = 2_000


def _producer(env: Environment, channel: Channel, queue: Store) -> ProcessGenerator:
    for seq in range(TRANSFERS):
        end = channel.quote(size=64 * 1024, rate=100e6)
        yield env.timeout_at(end)
        yield queue.put(seq)


def _consumer(env: Environment, queue: Store) -> ProcessGenerator:
    for _ in range(TRANSFERS):
        yield queue.get()
        yield env.timeout(1e-6)


def _run_kernel_workload() -> Environment:
    env = Environment()
    for i in range(PAIRS):
        channel = Channel(env, name=f"ch{i}")
        queue: Store = Store(env, capacity=64)
        env.process(_producer(env, channel, queue), name=f"prod{i}")
        env.process(_consumer(env, queue), name=f"cons{i}")
    env.run()
    return env


def test_kernel_throughput(benchmark, results_dir):
    events_before = total_events_processed()
    wall_start = time.perf_counter()
    env = benchmark.pedantic(_run_kernel_workload, rounds=1, iterations=1)
    elapsed = time.perf_counter() - wall_start
    events = total_events_processed() - events_before
    events_per_sec = round(events / elapsed) if elapsed > 0 else 0

    text = (
        "kernel microbenchmark\n"
        f"pairs            : {PAIRS}\n"
        f"transfers/pair   : {TRANSFERS}\n"
        f"heap events      : {events}\n"
        f"wall seconds     : {elapsed:.3f}\n"
        f"events_per_sec   : {events_per_sec}\n"
    )
    print("\n" + text)
    (results_dir / "kernel.txt").write_text(text)
    benchmark.extra_info["events"] = events
    benchmark.extra_info["events_per_sec"] = events_per_sec
    write_bench_json(
        results_dir,
        "kernel",
        "microbench",
        {
            "pairs": PAIRS,
            "transfers_per_pair": TRANSFERS,
            "events_processed": events,
            "wall_seconds": round(elapsed, 3),
            "events_per_sec": events_per_sec,
        },
    )

    # Sanity: the workload actually ran to completion.
    assert env.events_processed > PAIRS * TRANSFERS
    assert events >= env.events_processed


# ---------------------------------------------------------------------------
#: Pipeline workload: one client uploading this much through 3-replica
#: pipelines — the hot loop the packet-train fast path coalesces.
PIPELINE_UPLOAD = 256 * MB


def _run_pipeline_workload(coalesce_packets: int):
    """One baseline-HDFS upload; returns (duration, events, wall)."""
    config = SimulationConfig().with_hdfs(
        block_size=32 * MB,
        packet_size=64 * KB,
        coalesce_packets=coalesce_packets,
    )
    env = Environment()
    cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=config)
    deployment = HdfsDeployment(cluster)
    client = HdfsClient(deployment)
    events_before = total_events_processed()
    wall_start = time.perf_counter()
    result = env.run(
        until=env.process(client.put("/bench/pipeline.bin", PIPELINE_UPLOAD))
    )
    wall = time.perf_counter() - wall_start
    events = total_events_processed() - events_before
    return result.duration, events, wall


def test_pipeline_train_throughput(benchmark, results_dir):
    """Packet-train coalescing: same simulated timeline, ≥3x fewer events."""
    legacy_duration, legacy_events, legacy_wall = _run_pipeline_workload(1)
    duration, events, wall = benchmark.pedantic(
        lambda: _run_pipeline_workload(0), rounds=1, iterations=1
    )

    events_per_sec = round(events / wall) if wall > 0 else 0
    legacy_eps = round(legacy_events / legacy_wall) if legacy_wall > 0 else 0
    event_ratio = legacy_events / events

    text = (
        "pipeline workload (baseline HDFS upload, 3-replica pipelines)\n"
        f"upload bytes          : {PIPELINE_UPLOAD}\n"
        f"legacy heap events    : {legacy_events}\n"
        f"train heap events     : {events}\n"
        f"event reduction       : {event_ratio:.1f}x\n"
        f"legacy wall seconds   : {legacy_wall:.3f}\n"
        f"train wall seconds    : {wall:.3f}\n"
        f"legacy events_per_sec : {legacy_eps}\n"
        f"train events_per_sec  : {events_per_sec}\n"
    )
    print("\n" + text)
    (results_dir / "kernel_pipeline.txt").write_text(text)
    write_bench_json(
        results_dir,
        "kernel",
        "pipeline",
        {
            "upload_bytes": PIPELINE_UPLOAD,
            "events_processed": events,
            "wall_seconds": round(wall, 3),
            "events_per_sec": events_per_sec,
            "legacy_events_processed": legacy_events,
            "legacy_wall_seconds": round(legacy_wall, 3),
            "legacy_events_per_sec": legacy_eps,
            "event_reduction": round(event_ratio, 2),
        },
    )
    benchmark.extra_info["event_reduction"] = round(event_ratio, 2)
    benchmark.extra_info["events_per_sec"] = events_per_sec

    # The fast path must preserve the simulated timeline bit-for-bit...
    assert duration == legacy_duration
    # ...while coalescing at least 3x of the per-packet event traffic.
    assert event_ratio >= 3.0
