"""Kernel microbenchmark: raw event throughput of the simulation core.

Not a paper figure — this measures the discrete-event engine itself so
perf work on the hot loop (the analytic channel fast path, the sync
store completions) has a number to move.  The workload exercises the
primitives the packet pipeline leans on: timeouts, analytic channel
transfers, and store put/get handoffs between producer/consumer pairs.

Writes events/sec to ``benchmarks/results/kernel.txt`` and attaches it
to pytest-benchmark's ``extra_info``.
"""

import time

from repro.sim import (
    Channel,
    Environment,
    ProcessGenerator,
    Store,
    total_events_processed,
)

#: Concurrent producer/consumer pairs; enough to keep the heap non-trivial.
PAIRS = 20
#: Transfers each producer pushes through its channel.
TRANSFERS = 2_000


def _producer(env: Environment, channel: Channel, queue: Store) -> ProcessGenerator:
    for seq in range(TRANSFERS):
        end = channel.quote(size=64 * 1024, rate=100e6)
        yield env.timeout_at(end)
        yield queue.put(seq)


def _consumer(env: Environment, queue: Store) -> ProcessGenerator:
    for _ in range(TRANSFERS):
        yield queue.get()
        yield env.timeout(1e-6)


def _run_kernel_workload() -> Environment:
    env = Environment()
    for i in range(PAIRS):
        channel = Channel(env, name=f"ch{i}")
        queue: Store = Store(env, capacity=64)
        env.process(_producer(env, channel, queue), name=f"prod{i}")
        env.process(_consumer(env, queue), name=f"cons{i}")
    env.run()
    return env


def test_kernel_throughput(benchmark, results_dir):
    events_before = total_events_processed()
    wall_start = time.perf_counter()
    env = benchmark.pedantic(_run_kernel_workload, rounds=1, iterations=1)
    elapsed = time.perf_counter() - wall_start
    events = total_events_processed() - events_before
    events_per_sec = round(events / elapsed) if elapsed > 0 else 0

    text = (
        "kernel microbenchmark\n"
        f"pairs            : {PAIRS}\n"
        f"transfers/pair   : {TRANSFERS}\n"
        f"heap events      : {events}\n"
        f"wall seconds     : {elapsed:.3f}\n"
        f"events_per_sec   : {events_per_sec}\n"
    )
    print("\n" + text)
    (results_dir / "kernel.txt").write_text(text)
    benchmark.extra_info["events"] = events
    benchmark.extra_info["events_per_sec"] = events_per_sec

    # Sanity: the workload actually ran to completion.
    assert env.events_processed > PAIRS * TRANSFERS
    assert events >= env.events_processed
