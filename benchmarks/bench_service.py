"""Service-mode benchmark: sustained ingest throughput + pod fan-out.

Not a paper figure — this measures the continuous-ingestion service
(`repro.service`) the way CI needs it measured:

* ``sustained`` — one 500-tenant service run over a scale-adjusted
  multi-hour horizon with quiescent barriers every simulated hour;
  records simulator events/second for the floor check and asserts the
  admission-control invariants plus checkpoint/resume byte-equivalence
  (the run is snapshotted at its first barrier, resumed, and both
  journal digests must match).
* ``pods`` — four independent service pods (distinct seeds) run
  sequentially and then through :func:`repro.pool.map_named` with one
  worker process per pod.  Per-pod reports must be identical in both
  modes; the wall-clock ratio is recorded as ``speedup`` and enforced
  only on machines with at least ``min_cpus`` cores (see
  ``perf_floor.json``).

Writes ``benchmarks/results/BENCH_service.json``.
"""

from __future__ import annotations

import dataclasses
import os
import time

from conftest import write_bench_json

from repro.pool import map_named
from repro.service import IngestService, ServiceSpec
from repro.sim import total_events_processed

MIN_CPUS_FOR_SPEEDUP = 4


def _spec(tenants: int, horizon: float, seed: int, speedup: float = 10.0) -> ServiceSpec:
    """A busy service spec: default mix with compressed interarrivals."""
    spec = ServiceSpec.default(
        tenants=tenants,
        horizon=horizon,
        checkpoint_every=3600.0,
        seed=seed,
        heartbeat_interval=60.0,
        dead_node_heartbeats=30,
    )
    classes = tuple(
        dataclasses.replace(c, mean_interarrival=c.mean_interarrival / speedup)
        for c in spec.classes
    )
    return dataclasses.replace(spec, classes=classes)


def _run_pod(tenants: int, horizon: float, seed: int) -> dict:
    """One pod: run a service to completion, return its summary."""
    report = IngestService(_spec(tenants, horizon, seed)).run()
    counts = report.counts
    assert counts["conservation_ok"]
    assert counts["queue_bounded"]
    assert counts["inflight_bounded"]
    return {
        "seed": seed,
        "arrivals": counts["arrivals"],
        "completed": counts["completed"],
        "digests": report.digests(),
    }


def test_service_sustained(benchmark, results_dir, scale):
    horizon = max(2 * 3600.0, 24 * 3600.0 * scale)
    spec = _spec(tenants=500, horizon=horizon, seed=20140901)

    events_before = total_events_processed()
    wall_start = time.perf_counter()

    def _run():
        service = IngestService(spec)
        return service.run(checkpoint_dir=results_dir)

    report = benchmark.pedantic(_run, rounds=1, iterations=1)
    wall = time.perf_counter() - wall_start
    events = total_events_processed() - events_before
    eps = int(events / wall) if wall > 0 else 0

    counts = report.counts
    assert counts["tenants"] == 500
    assert counts["conservation_ok"]
    assert counts["queue_bounded"]
    assert counts["inflight_bounded"]

    # Checkpoint/resume equivalence on the benchmark workload itself.
    first_ckpt = results_dir / "ckpt_001.pkl"
    resumed = IngestService.resume(first_ckpt).run()
    assert resumed.digests() == report.digests()
    for ckpt in results_dir.glob("ckpt_*.pkl"):
        ckpt.unlink()

    write_bench_json(
        results_dir,
        "service",
        "sustained",
        {
            "tenants": counts["tenants"],
            "horizon_hours": round(spec.horizon / 3600.0, 2),
            "segments": counts["segments"],
            "arrivals": counts["arrivals"],
            "completed": counts["completed"],
            "rejected": counts["rejected"],
            "events_processed": events,
            "wall_seconds": round(wall, 3),
            "events_per_sec": eps,
            "resume_identical": True,  # asserted above
        },
    )
    benchmark.extra_info["events_per_sec"] = eps
    benchmark.extra_info["arrivals"] = counts["arrivals"]


def test_service_pods(benchmark, results_dir, scale):
    cpus = os.cpu_count() or 1
    horizon = max(3600.0, 8 * 3600.0 * scale)
    tasks = [
        (f"pod{seed}", (400, horizon, seed)) for seed in (1, 2, 3, 4)
    ]

    def _sequential():
        return map_named(_run_pod, tasks, jobs=1)

    seq_start = time.perf_counter()
    sequential = benchmark.pedantic(_sequential, rounds=1, iterations=1)
    seq_wall = time.perf_counter() - seq_start

    if cpus >= 2:
        par_start = time.perf_counter()
        parallel = map_named(_run_pod, tasks, jobs=min(len(tasks), cpus))
        par_wall = time.perf_counter() - par_start
        # Same pods, same results — parallelism must not change physics.
        assert parallel == sequential
        speedup = seq_wall / par_wall if par_wall > 0 else 1.0
    else:
        par_wall = None
        speedup = 1.0

    write_bench_json(
        results_dir,
        "service",
        "pods",
        {
            "cpus": cpus,
            "n_pods": len(tasks),
            "horizon_hours": round(horizon / 3600.0, 2),
            "arrivals": sum(p["arrivals"] for p in sequential),
            "wall_seconds": round(seq_wall, 3),
            "parallel_wall_seconds": (
                round(par_wall, 3) if par_wall is not None else None
            ),
            "speedup": round(speedup, 2),
        },
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["cpus"] = cpus

    if cpus >= MIN_CPUS_FOR_SPEEDUP:
        assert speedup >= 2.0, (
            f"pod fan-out reached only {speedup:.2f}x on {cpus} CPUs"
        )
