"""Ablation A3: the live-pipeline cap (paper rule: num/repli = 3).

Cap 1 degenerates SMARTH to nearly-synchronous operation (the FNFA still
saves the within-block ACK wait); raising the cap beyond num/repli is
impossible without violating the §IV-C disjointness rule, so the sweep
tops out where the paper's rule does.
"""

from conftest import run_experiment

from repro.experiments import experiment_config
from repro.experiments.report import ExperimentResult
from repro.units import GB
from repro.workloads import run_upload, two_rack


def ablation_pipelines(scale: float) -> ExperimentResult:
    base = experiment_config()
    scenario = two_rack("small", throttle_mbps=50)
    size = int(8 * GB * scale)
    rows = []
    for cap in (1, 2, 3):
        config = base.with_smarth(max_pipelines=cap)
        outcome = run_upload(scenario, "smarth", size, config=config)
        assert outcome.fully_replicated
        rows.append(
            {
                "max_pipelines": cap,
                "smarth_s": round(outcome.duration, 1),
                "peak_concurrency": outcome.result.max_concurrent_pipelines,
            }
        )
    return ExperimentResult(
        experiment_id="ablation_pipelines",
        title="A3: live-pipeline cap sweep (small cluster, 50 Mbps throttle)",
        columns=("max_pipelines", "smarth_s", "peak_concurrency"),
        rows=rows,
        paper_claim={
            "claim": "the pipeline cap is num_datanodes / replication "
            "(= 3 here); each extra pipeline overlaps more replication "
            "behind the client"
        },
        measured={
            "cap1_vs_cap3": round(rows[0]["smarth_s"] / rows[2]["smarth_s"], 2)
        },
    )


def test_ablation_pipelines(benchmark, results_dir, scale):
    result = run_experiment(benchmark, results_dir, ablation_pipelines, scale=scale)
    times = [r["smarth_s"] for r in result.rows]
    # One pipeline (near-synchronous) is clearly slower than two or three.
    assert times[0] > times[1] * 1.3
    assert times[0] > times[2] * 1.3
    # Cap 3 matches or beats cap 2 up to warm-up noise at reduced scale
    # (at full scale the ordering is strictly monotone).
    tolerance = 1.02 if scale >= 0.9 else 1.15
    assert times[2] < times[1] * tolerance
    # Peak concurrency respects the configured cap.
    for row in result.rows:
        assert row["peak_concurrency"] <= row["max_pipelines"]
