"""10k-client campaign benchmark: batch completion kernel + windowed shards.

Not a paper figure — this measures the two fast paths this repo adds on
top of the packet-train coalescer, on the campaign shape they were built
for (:func:`repro.workloads.campaign10k`: 100 pods x 100 clients x 10
datanodes at full scale, 4 MB files inside the data-queue bound so the
train's batched feeder engages on every block):

* ``campaign10k`` — the vectorized **batch completion kernel**
  (``HdfsConfig.batch_completions``) against the scalar per-row
  conductor.  Timelines must be bit-identical; the kernel's win shows up
  twice: the machine-independent *event reduction* (the batched feeder
  retires a whole block's packet stream with zero heap events per
  packet) and the wall-clock *speedup*.  Both runs are timed best-of-N
  because the ratio of two ~second walls is noisy on shared runners; the
  event reduction is deterministic and carries the hard floor.
* ``windows`` — sequential vs thread-pool **windowed sharded
  execution** (``run_windows(workers=N)``).  Pods share nothing, so the
  whole run is one conservative window per chunk and the barrier is the
  only synchronization point.  A thread speedup is only physically
  possible on a multi-core, free-threaded build — the GIL serializes
  the drain otherwise — so the measured CPU count *and* GIL state are
  recorded and ``check_perf_floor.py`` skips the floor (loudly) when
  either gate fails.

Writes ``benchmarks/results/BENCH_campaign.json``; the CI perf-smoke
job checks it against the ``campaign`` group in ``perf_floor.json``.
"""

from __future__ import annotations

import os
import sys
import time

from conftest import write_bench_json

from repro.config import SimulationConfig
from repro.workloads import campaign10k, run_pods_single_env

#: Best-of-N timing for the scalar/batch pair (wall-ratio noise guard).
TIMING_REPS = 2

#: Shards (= thread-pool width ceiling) for the windowed rows.
WINDOW_SHARDS = 4

#: Thread-scaling floors only make sense with enough cores...
MIN_CPUS_FOR_SPEEDUP = 4


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _gil_enabled() -> bool:
    """...and only on a free-threaded build (PEP 703); the GIL
    serializes the window drain on stock CPython."""
    return bool(getattr(sys, "_is_gil_enabled", lambda: True)())


def _timed(fn):
    start = time.perf_counter()
    outcome = fn()
    return outcome, time.perf_counter() - start


def _best_of(fn, reps=TIMING_REPS):
    """Minimum wall over ``reps`` runs (outcome from the fastest run)."""
    best_outcome, best_wall = None, float("inf")
    for _ in range(reps):
        outcome, wall = _timed(fn)
        if wall < best_wall:
            best_outcome, best_wall = outcome, wall
    return best_outcome, best_wall


def _window_health(health: dict) -> dict:
    """The windowed-execution gauges ``publish_env_health`` exports."""
    return {
        key: health[key]
        for key in (
            "window_barriers",
            "window_events",
            "window_batch_max",
            "window_batch_mean",
            "window_workers",
            "shard_events",
            "shard_imbalance",
            "inter_shard_messages",
        )
        if key in health
    }


def test_campaign_batch_kernel(benchmark, results_dir, scale):
    """Scalar vs vectorized completion kernel on the campaign shape."""
    plan = campaign10k(scale=max(0.02, scale * 0.4))
    batch_config = SimulationConfig()
    scalar_config = batch_config.with_hdfs(batch_completions=0)
    cpus = _cpus()

    batch, batch_wall = benchmark.pedantic(
        lambda: _best_of(lambda: run_pods_single_env(plan, config=batch_config)),
        rounds=1,
        iterations=1,
    )
    scalar, scalar_wall = _best_of(
        lambda: run_pods_single_env(plan, config=scalar_config)
    )

    # The kernel contract: bit-identical timing, fewer heap events.
    assert batch.timeline == scalar.timeline
    assert batch.fully_replicated and scalar.fully_replicated
    assert batch.bytes_moved == scalar.bytes_moved

    speedup = scalar_wall / batch_wall if batch_wall > 0 else 0.0
    event_reduction = (
        scalar.events_processed / batch.events_processed
        if batch.events_processed
        else 0.0
    )
    eps = (
        round(batch.events_processed / batch_wall) if batch_wall > 0 else 0
    )
    bytes_sent, bytes_received = batch.bytes_moved

    lines = [
        f"campaign10k batch kernel "
        f"({len(plan.pods)} pods, {plan.n_clients} clients, "
        f"{plan.n_datanodes} datanodes)",
        f"cpus                 : {cpus}",
        f"makespan (simulated) : {batch.makespan:.6f}",
        f"aggregate bytes      : {bytes_sent} sent / {bytes_received} received",
        f"scalar kernel wall   : {scalar_wall:.3f}s "
        f"({scalar.events_processed} events)",
        f"batch kernel wall    : {batch_wall:.3f}s "
        f"({batch.events_processed} events, {eps} events/s)",
        f"wall speedup         : {speedup:.2f}x (best of {TIMING_REPS})",
        f"event reduction      : {event_reduction:.2f}x",
    ]
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    (results_dir / "campaign_kernel.txt").write_text(text)

    write_bench_json(
        results_dir,
        "campaign",
        "campaign10k",
        {
            "cpus": cpus,
            "n_pods": len(plan.pods),
            "n_clients": plan.n_clients,
            "n_datanodes": plan.n_datanodes,
            "file_bytes": plan.pods[0].file_bytes,
            "makespan": batch.makespan,
            "bytes_sent": bytes_sent,
            "bytes_received": bytes_received,
            "scalar_wall_seconds": round(scalar_wall, 3),
            "scalar_events": scalar.events_processed,
            "wall_seconds": round(batch_wall, 3),
            "events_processed": batch.events_processed,
            "events_per_sec": eps,
            "timeline_identical": True,  # asserted above
            "speedup": round(speedup, 2),
            "event_reduction": round(event_reduction, 2),
        },
    )
    benchmark.extra_info["events_per_sec"] = eps
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["event_reduction"] = round(event_reduction, 2)

    # The machine-independent claim is enforced everywhere; the wall
    # ratio only where a second-long measurement can be trusted at all.
    assert event_reduction >= 1.5, (
        f"batch kernel removed only {event_reduction:.2f}x of the scalar "
        "event traffic"
    )


def test_campaign_windowed_threads(benchmark, results_dir, scale):
    """Sequential vs threaded windowed drain on the sharded campaign."""
    plan = campaign10k(scale=max(0.02, scale * 0.4))
    config = SimulationConfig()
    cpus = _cpus()
    gil = _gil_enabled()

    baseline, base_wall = _timed(
        lambda: run_pods_single_env(plan, config=config)
    )
    sequential, seq_wall = _timed(
        lambda: run_pods_single_env(
            plan, config=config, shards=WINDOW_SHARDS, windowed=True
        )
    )
    threaded, thr_wall = benchmark.pedantic(
        lambda: _timed(
            lambda: run_pods_single_env(
                plan,
                config=config,
                shards=WINDOW_SHARDS,
                windowed=True,
                workers=WINDOW_SHARDS,
            )
        ),
        rounds=1,
        iterations=1,
    )

    # Determinism contract: every executor, the same timeline.
    assert sequential.timeline == baseline.timeline
    assert threaded.timeline == baseline.timeline
    assert threaded.fully_replicated

    speedup = seq_wall / thr_wall if thr_wall > 0 else 0.0
    health = _window_health(threaded.health or {})

    lines = [
        f"campaign10k windowed shards "
        f"({len(plan.pods)} pods, {WINDOW_SHARDS} shards)",
        f"cpus                 : {cpus}",
        f"gil enabled          : {gil}",
        f"single-heap wall     : {base_wall:.3f}s",
        f"windowed x1 wall     : {seq_wall:.3f}s",
        f"windowed x{WINDOW_SHARDS} wall     : {thr_wall:.3f}s "
        f"({speedup:.2f}x vs sequential)",
        f"window barriers      : {health.get('window_barriers')}",
        f"window batch max     : {health.get('window_batch_max')}",
        f"window batch mean    : {round(health.get('window_batch_mean', 0.0), 1)}",
        f"window workers       : {health.get('window_workers')}",
    ]
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    (results_dir / "campaign_windows.txt").write_text(text)

    write_bench_json(
        results_dir,
        "campaign",
        "windows",
        {
            "cpus": cpus,
            "gil_enabled": gil,
            "n_pods": len(plan.pods),
            "shards": WINDOW_SHARDS,
            "workers": WINDOW_SHARDS,
            "baseline_wall_seconds": round(base_wall, 3),
            "sequential_wall_seconds": round(seq_wall, 3),
            "threaded_wall_seconds": round(thr_wall, 3),
            "timeline_identical": True,  # asserted above
            "speedup": round(speedup, 2),
            "window_health": health,
        },
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["cpus"] = cpus
    benchmark.extra_info["gil_enabled"] = gil

    # A thread speedup needs cores *and* a GIL-free interpreter; on stock
    # CPython the value is recorded (the determinism contract above is
    # the real assertion) but not enforced.
    if cpus >= MIN_CPUS_FOR_SPEEDUP and not gil:
        assert speedup >= 1.3, (
            f"threaded windows reached only {speedup:.2f}x on {cpus} CPUs"
        )
