"""Ablation A6: the §III-D closed-form cost model vs the simulator.

Formula (2) predicts baseline upload time from the pipeline's minimum
bandwidth; the refined Formula (3) predicts SMARTH from the first-hop
mix and the aggregate drain cap.  The simulator should land within ~15%
of the baseline prediction and ~30% of the refined SMARTH prediction
(which still abstracts slot-cadence effects).
"""

from conftest import run_experiment

from repro.experiments import experiment_config
from repro.experiments.report import ExperimentResult
from repro.analysis import validate_hdfs, validate_smarth
from repro.units import GB


def cost_model_validation(scale: float) -> ExperimentResult:
    config = experiment_config()
    size = int(8 * GB * scale)
    rows = []
    worst = 0.0
    for throttle in (50, 100, 150):
        point = validate_hdfs(size, throttle, config=config)
        rows.append(
            {
                "case": point.label,
                "simulated_s": round(point.simulated, 1),
                "predicted_s": round(point.predicted, 1),
                "error_pct": round(point.relative_error * 100, 1),
            }
        )
        worst = max(worst, abs(point.relative_error))
    smarth_rows = []
    for throttle in (50, 100):
        point = validate_smarth(size, throttle, config=config)
        smarth_rows.append(
            {
                "case": point.label,
                "simulated_s": round(point.simulated, 1),
                "predicted_s": round(point.predicted, 1),
                "error_pct": round(point.relative_error * 100, 1),
            }
        )
    return ExperimentResult(
        experiment_id="cost_model",
        title="A6: simulator vs §III-D cost model",
        columns=("case", "simulated_s", "predicted_s", "error_pct"),
        rows=rows + smarth_rows,
        paper_claim={
            "claim": "Formula (2): T = T_n⌈D/B⌉ + (P/B_min + T_w)⌈D/P⌉; "
            "Formula (3) replaces B_min with B_max"
        },
        measured={"worst_hdfs_error": f"{worst * 100:.0f}%"},
    )


def test_cost_model(benchmark, results_dir, scale):
    result = run_experiment(
        benchmark, results_dir, cost_model_validation, scale=scale
    )
    for row in result.rows:
        if row["case"].startswith("hdfs"):
            assert abs(row["error_pct"]) < 15
        elif scale >= 0.9:
            # The refined SMARTH model assumes converged speed records,
            # which only holds at full scale.
            assert abs(row["error_pct"]) < 35
