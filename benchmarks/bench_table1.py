"""Table I: the EC2 instance catalog (configuration check, not a sweep)."""

from conftest import run_experiment

from repro.experiments import table1


def test_table1(benchmark, results_dir):
    result = run_experiment(benchmark, results_dir, table1)
    by_name = {r["instance"]: r for r in result.rows}
    assert by_name["small"]["network_mbps"] == 216
    assert by_name["medium"]["network_mbps"] == 376
    assert by_name["large"]["network_mbps"] == 376
