"""Figure 5(a)-(f): upload time vs file size, with/without 100 Mbps
two-rack throttling, on small/medium/large clusters.

Shape targets: time ∝ size; throttled runs slower; medium ≈ large (equal
NICs); no big HDFS-vs-SMARTH gap unthrottled.
"""

import pytest
from conftest import run_experiment

from repro.experiments import fig5


def test_fig5(benchmark, results_dir, scale):
    result = run_experiment(benchmark, results_dir, fig5, scale=scale)

    # Linearity: max/min time ratio tracks the size ratio within 25%.
    for instance in ("small", "medium", "large"):
        time_ratio = result.measured[f"{instance}_time_ratio"]
        size_ratio = result.measured[f"{instance}_size_ratio"]
        assert time_ratio == pytest.approx(size_ratio, rel=0.25)

    # Medium and large clusters perform the same (equal NIC rates).
    medium = {
        (r["network"], r["size_gb"]): r["hdfs_s"]
        for r in result.rows
        if r["instance"] == "medium"
    }
    for r in result.rows:
        if r["instance"] == "large":
            assert r["hdfs_s"] == pytest.approx(
                medium[(r["network"], r["size_gb"])], rel=0.1
            )

    # Unthrottled homogeneous network: no big gain for SMARTH.
    for r in result.rows:
        if r["network"] == "default":
            assert r["improvement_pct"] < 40
