"""Figure 12(a)(b): small and medium clusters, 0-5 slow nodes at 150 Mbps.

Paper: the benefit shrinks versus the 50 Mbps case — 19% (small) and 59%
(medium) at one slow node.
"""

from conftest import run_experiment

from repro.experiments import fig10, fig12


def test_fig12(benchmark, results_dir, scale):
    result = run_experiment(benchmark, results_dir, fig12, scale=scale)
    small = {r["slow_nodes"]: r for r in result.rows if r["cluster"] == "small"}
    medium = {r["slow_nodes"]: r for r in result.rows if r["cluster"] == "medium"}

    # 150 Mbps slow nodes hurt far less than 50 Mbps ones (vs Figure 10).
    fifty = fig10(scale=scale, ks=(1,))
    assert small[1]["improvement_pct"] < fifty.rows[0]["improvement_pct"]

    # Medium gains more than small (paper: 59% vs 19%): a 150 Mbps node
    # barely slows a 216 Mbps NIC but badly slows a 376 Mbps one.  At
    # reduced scale the warm-up adds noise, so allow a small margin.
    margin = 1.0 if scale >= 0.9 else 0.85
    assert medium[1]["improvement_pct"] > small[1]["improvement_pct"] * margin
