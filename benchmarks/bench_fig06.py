"""Figure 6: small cluster, cross-rack throttle sweep (8 GB uploads).

Paper: 130% improvement at 50 Mbps, about 27% at 150 Mbps.  Shape: SMARTH
always wins under throttling, and the tighter the throttle the bigger the
win.
"""

from conftest import run_experiment

from repro.experiments import fig6


def test_fig6(benchmark, results_dir, scale):
    result = run_experiment(benchmark, results_dir, fig6, scale=scale)
    imps = {r["label"]: r["improvement_pct"] for r in result.rows}

    # Monotone: tighter throttle → larger improvement.
    assert imps["50Mbps"] > imps["100Mbps"] > imps["150Mbps"] > 0
    if scale >= 0.9:
        # Factor targets at full fidelity (paper: 130% @50, 27% @150).
        assert imps["50Mbps"] > 100
        assert 15 < imps["150Mbps"] < 80
    else:
        assert imps["50Mbps"] > 30
    # Unthrottled: small gain only.
    assert imps["default"] < 40
