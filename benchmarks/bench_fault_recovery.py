"""Ablation A5: fault-recovery overhead, HDFS (Algorithm 3) vs SMARTH
(Algorithm 4).

Crashes a busy datanode early in the upload and compares against clean
runs.  Both systems must finish fully replicated; the interesting number
is the relative overhead the recovery adds.
"""

from conftest import run_experiment

from repro.experiments import experiment_config
from repro.experiments.report import ExperimentResult
from repro.units import GB
from repro.workloads import run_upload, two_rack


def fault_recovery(scale: float) -> ExperimentResult:
    config = experiment_config()
    scenario = two_rack("small", throttle_mbps=100)
    size = int(8 * GB * scale)
    rows = []
    measured = {}
    for system in ("hdfs", "smarth"):
        clean = run_upload(scenario, system, size, config=config)
        faulty = run_upload(
            scenario,
            system,
            size,
            config=config,
            fault_hook=lambda inj: inj.kill_busy_at(at=2.0, pick=1),
        )
        assert clean.fully_replicated and faulty.fully_replicated
        overhead = (faulty.duration / clean.duration - 1) * 100
        rows.append(
            {
                "system": system,
                "clean_s": round(clean.duration, 1),
                "with_failure_s": round(faulty.duration, 1),
                "overhead_pct": round(overhead, 1),
                "recoveries": faulty.result.recoveries,
            }
        )
        measured[f"{system}_overhead"] = f"{overhead:.0f}%"
    return ExperimentResult(
        experiment_id="fault_recovery",
        title="A5: recovery overhead of a mid-upload datanode crash",
        columns=("system", "clean_s", "with_failure_s", "overhead_pct", "recoveries"),
        rows=rows,
        paper_claim={
            "claim": "§IV: both protocols must survive pipeline faults; "
            "SMARTH recovers each errored pipeline like Algorithm 3 and "
            "resumes the interrupted block"
        },
        measured=measured,
    )


def test_fault_recovery(benchmark, results_dir, scale):
    result = run_experiment(benchmark, results_dir, fault_recovery, scale=scale)
    for row in result.rows:
        assert row["recoveries"] >= 1
        # A single crash must not dominate the upload time.
        assert row["overhead_pct"] < 60
