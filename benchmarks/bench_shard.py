"""Sharded-core scale benchmark: pod-partitioned multi-tenant campaigns.

Not a paper figure — this measures the *sharded parallel simulation
core* (``repro.sim.shard``) on the multi-tenant workloads where it
matters, using the pod plans from :mod:`repro.workloads.sharded`:

* ``scale64`` — the scale64 cluster shape cut into 8 independent pods
  (8 pods × 8 clients × 30 datanodes = 64 clients, 240 datanodes).
* ``scale256`` — the high-tenancy shape cut into 16 pods
  (16 pods × 16 clients × 4 datanodes = 256 clients, 64 datanodes).

Each workload runs under three executors: the single-heap
:class:`Environment` baseline, the in-process
:class:`ShardedEnvironment` (deterministic K-way merge — same event
order, by construction), and the worker-process backend at shard counts
{1, 2, 4, 8}.  Every executor's per-client timeline must be *identical*
to the baseline — asserted, not assumed.  Wall-clock speedup of the best
process run over the baseline is the headline number; it is asserted
(≥ 2x) and floor-checked only on machines with at least 4 CPUs, because
a single-core runner cannot parallelize anything — the measured CPU
count is recorded in ``BENCH_shard.json`` so ``check_perf_floor.py``
can tell the difference.

Writes ``benchmarks/results/BENCH_shard.json``; the CI perf-smoke job
checks it against ``perf_floor.json``.
"""

from __future__ import annotations

import os
import time

from conftest import write_bench_json

from repro.config import SimulationConfig
from repro.units import KB, MB
from repro.workloads import PodPlan, run_pods_single_env, run_pods_sharded

#: Worker-process backend shard counts measured per workload.
SHARD_COUNTS = (1, 2, 4, 8)

#: Parallel speedup is only physically possible with multiple cores;
#: below this the ≥2x assertion is recorded but not enforced.
MIN_CPUS_FOR_SPEEDUP = 4


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _config() -> SimulationConfig:
    return SimulationConfig().with_hdfs(
        block_size=256 * KB, packet_size=64 * KB, heartbeat_interval=0.5
    )


def _timed(fn):
    start = time.perf_counter()
    outcome = fn()
    return outcome, time.perf_counter() - start


def _run_matrix(benchmark, results_dir, section, plan, bench_shards):
    """Baseline vs in-process sharded vs process backend; write one section."""
    config = _config()
    cpus = _cpus()

    baseline, base_wall = _timed(
        lambda: run_pods_single_env(plan, config=config)
    )
    assert baseline.fully_replicated

    inproc, inproc_wall = _timed(
        lambda: run_pods_single_env(plan, config=config, shards=4)
    )
    # The deterministic merge contract: same timeline, same event count.
    assert inproc.timeline == baseline.timeline
    assert inproc.events_processed == baseline.events_processed

    process_rows = []
    best_speedup = 0.0
    for shards in SHARD_COUNTS:
        if shards == bench_shards:
            outcome, wall = benchmark.pedantic(
                lambda: _timed(
                    lambda: run_pods_sharded(plan, shards=bench_shards, config=config)
                ),
                rounds=1,
                iterations=1,
            )
        else:
            outcome, wall = _timed(
                lambda: run_pods_sharded(plan, shards=shards, config=config)
            )
        assert outcome.timeline == baseline.timeline
        assert outcome.fully_replicated
        speedup = base_wall / wall if wall > 0 else 0.0
        best_speedup = max(best_speedup, speedup)
        process_rows.append(
            {
                "shards": shards,
                "wall_seconds": round(wall, 3),
                "speedup": round(speedup, 2),
                "shard_events": outcome.shard_events,
            }
        )

    eps = (
        round(baseline.events_processed / base_wall) if base_wall > 0 else 0
    )
    lines = [
        f"{section} pod workload "
        f"({len(plan.pods)} pods, {plan.n_clients} clients, "
        f"{plan.n_datanodes} datanodes)",
        f"cpus                 : {cpus}",
        f"makespan (simulated) : {baseline.makespan:.6f}",
        f"baseline events      : {baseline.events_processed}",
        f"baseline wall        : {base_wall:.3f}s  ({eps} events/s)",
        f"inproc sharded wall  : {inproc_wall:.3f}s "
        f"(timeline identical, shard load {inproc.health['shard_events']})",
    ]
    for row in process_rows:
        lines.append(
            f"processes x{row['shards']:<2}        : "
            f"{row['wall_seconds']:.3f}s  ({row['speedup']:.2f}x)"
        )
    lines.append(f"best process speedup : {best_speedup:.2f}x")
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    (results_dir / f"shard_{section}.txt").write_text(text)

    write_bench_json(
        results_dir,
        "shard",
        section,
        {
            "cpus": cpus,
            "n_pods": len(plan.pods),
            "n_clients": plan.n_clients,
            "n_datanodes": plan.n_datanodes,
            "file_bytes": plan.pods[0].file_bytes,
            "makespan": baseline.makespan,
            "events_processed": baseline.events_processed,
            "wall_seconds": round(base_wall, 3),
            "events_per_sec": eps,
            "inproc_wall_seconds": round(inproc_wall, 3),
            "inproc_shard_events": inproc.health["shard_events"],
            "inproc_health": {
                key: inproc.health[key]
                for key in (
                    "events_dispatched",
                    "heap_high_water",
                    "inter_shard_messages",
                    "window_barriers",
                    "window_events",
                    "window_batch_max",
                    "window_batch_mean",
                    "window_workers",
                    "shard_imbalance",
                )
                if key in inproc.health
            },
            "timeline_identical": True,  # asserted above, for every mode
            "process_runs": process_rows,
            "speedup": round(best_speedup, 2),
        },
    )
    benchmark.extra_info["events_per_sec"] = eps
    benchmark.extra_info["speedup"] = round(best_speedup, 2)
    benchmark.extra_info["cpus"] = cpus

    # A single-core machine cannot speed anything up by adding workers;
    # enforce the parallel claim only where it is physically possible.
    if cpus >= MIN_CPUS_FOR_SPEEDUP:
        assert best_speedup >= 2.0, (
            f"process backend reached only {best_speedup:.2f}x "
            f"on {cpus} CPUs"
        )


def test_shard_scale64(benchmark, results_dir, scale):
    """64 clients / 240 datanodes, cut into 8 independent pods."""
    plan = PodPlan.regular(
        n_pods=8,
        clients_per_pod=8,
        datanodes_per_pod=30,
        file_bytes=max(512 * KB, int(16 * MB * scale)),
        stagger=0.05,
    )
    _run_matrix(benchmark, results_dir, "scale64", plan, bench_shards=4)


def test_shard_scale256(benchmark, results_dir, scale):
    """256 clients / 64 datanodes, cut into 16 high-tenancy pods."""
    plan = PodPlan.regular(
        n_pods=16,
        clients_per_pod=16,
        datanodes_per_pod=4,
        file_bytes=max(512 * KB, int(4 * MB * scale)),
        stagger=0.02,
    )
    _run_matrix(benchmark, results_dir, "scale256", plan, bench_shards=8)
