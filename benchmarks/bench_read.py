"""Read fast path: coalesced streaming, speed-aware ranking, contention.

Three sections, written to ``benchmarks/results/BENCH_read.json`` and
checked by the ``read`` group in ``perf_floor.json``:

* ``streaming`` — the same whole-file read with ``coalesce_reads`` off
  (analytic :class:`~repro.hdfs.train.ReadTrain` per block, the
  default) and on (legacy per-chunk prefetch loop).  Simulated duration
  must match *exactly* — the train is an equivalence-preserving
  optimization — while the heap-event count drops by at least
  ``min_event_reduction`` 1.5x (measured ~7x: three quotes per block
  instead of three events per 64 KB chunk).
* ``ranking`` — the reason the reader consults the SpeedRegistry: on a
  heterogeneous cluster whose registry is warm from SMARTH ingest, the
  default policy's speed-aware ``rank_replicas`` (recorded speeds,
  mean-speed prior for unrecorded holders) beats a locality-only
  subclass on total simulated read seconds, floored at ``min_speedup``
  1.1.  Both ratios are *simulated* seconds — machine-independent and
  exactly reproducible.
* ``mixed`` — a reader racing a concurrent writer through the shared
  NIC/disk channels and the bounded serve queue, on baseline HDFS and
  SMARTH.  No floor; the A/B (durations and ``read.serve_wait``) is
  recorded for the README's performance table.
"""

from __future__ import annotations

from conftest import write_bench_json

from repro.config import SimulationConfig
from repro.cluster import SMALL, build_homogeneous
from repro.hdfs import HdfsDeployment, HdfsReader
from repro.policy import Policy
from repro.sim import Environment
from repro.smarth import SmarthDeployment
from repro.units import KB, MB
from repro.workloads import heterogeneous

#: Streaming-shape knobs (block/packet fixed; the file size scales).
STREAM_BLOCK = 8 * MB
STREAM_PACKET = 64 * KB
STREAM_FILE = 64 * MB

#: Ranking workload shape (fixed — the signal needs a warm registry on
#: a long-lived heterogeneous cluster, not big files, so the smoke
#: REPRO_BENCH_SCALE does not shrink it).
RANK_UPLOADS = 32
RANK_READS = 8
RANK_FILE = 32 * MB
RANK_BLOCK = 8 * MB
#: Fast heartbeats so §III-B reports land *during* the short uploads.
RANK_HEARTBEAT = 0.25


class LocalityOnlyPolicy(Policy):
    """The pre-speed-ranking reference: topology order, nothing else."""

    name = "bench-locality-only"

    def rank_replicas(self, client, block_id, candidates, node):
        topology = self.deployment.network.topology
        if node.name in topology:
            candidates.sort(
                key=lambda dn: topology.distance(node.name, dn)
            )
        else:
            candidates.sort(
                key=lambda dn: 0 if topology.rack_of(dn) == node.rack else 1
            )
        return candidates


def _streamed_read(coalesce: int, size: int):
    """Write ``size`` then read it back; (duration, read-phase events)."""
    env = Environment()
    config = SimulationConfig().with_hdfs(
        block_size=STREAM_BLOCK,
        packet_size=STREAM_PACKET,
        coalesce_reads=coalesce,
    )
    cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=config)
    deployment = HdfsDeployment(cluster)
    client = deployment.client()
    env.run(until=env.process(client.put("/f", size)))
    before = env.events_processed
    result = env.run(until=env.process(HdfsReader(deployment).get("/f")))
    return result.duration, env.events_processed - before


def test_read_streaming(benchmark, results_dir, scale):
    """Coalesced trains: identical simulated read, far fewer events."""
    size = max(2 * STREAM_BLOCK, int(STREAM_FILE * scale))
    fast_duration, fast_events = benchmark.pedantic(
        lambda: _streamed_read(0, size), rounds=1, iterations=1
    )
    legacy_duration, legacy_events = _streamed_read(1, size)
    reduction = legacy_events / fast_events if fast_events else 0.0

    lines = [
        f"streaming read ({size // MB} MB, {STREAM_BLOCK // MB} MB blocks, "
        f"{STREAM_PACKET // KB} KB packets)",
        f"coalesced : {fast_duration:.4f} simulated s, "
        f"{fast_events} heap events",
        f"legacy    : {legacy_duration:.4f} simulated s, "
        f"{legacy_events} heap events",
        f"event reduction : {reduction:.2f}x (floor 1.5x)",
    ]
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    (results_dir / "read_streaming.txt").write_text(text)

    write_bench_json(
        results_dir,
        "read",
        "streaming",
        {
            "file_bytes": size,
            "block_bytes": STREAM_BLOCK,
            "packet_bytes": STREAM_PACKET,
            "coalesced_simulated_s": round(fast_duration, 6),
            "legacy_simulated_s": round(legacy_duration, 6),
            "coalesced_events": fast_events,
            "legacy_events": legacy_events,
            "event_reduction": round(reduction, 2),
        },
    )
    benchmark.extra_info["event_reduction"] = round(reduction, 2)
    assert fast_duration == legacy_duration, (
        "coalesced read is not equivalence-preserving: "
        f"{fast_duration} != {legacy_duration}"
    )
    assert reduction >= 1.5


def _read_series(policy) -> float:
    """Warm a heterogeneous cluster's registry by SMARTH ingest, then
    total the simulated seconds of whole-file reads under ``policy``."""
    config = SimulationConfig().with_hdfs(
        block_size=RANK_BLOCK, heartbeat_interval=RANK_HEARTBEAT
    )
    env, cluster = heterogeneous().make(config)
    deployment = SmarthDeployment(cluster, policy=policy)
    client = deployment.client()
    for index in range(RANK_UPLOADS):
        env.run(until=env.process(client.put(f"/data/f{index}", RANK_FILE)))
    reader = HdfsReader(deployment)
    total = 0.0
    for index in range(RANK_READS):
        result = env.run(until=env.process(reader.get(f"/data/f{index}")))
        total += result.duration
    return total


def test_read_ranking(benchmark, results_dir):
    """Speed-aware replica ranking beats locality-only on hot records."""
    locality_total = benchmark.pedantic(
        lambda: _read_series(LocalityOnlyPolicy()), rounds=1, iterations=1
    )
    ranked_total = _read_series(None)
    speedup = locality_total / ranked_total if ranked_total > 0 else 0.0

    lines = [
        f"replica ranking ({RANK_UPLOADS} uploads warm-up, {RANK_READS} "
        f"reads x {RANK_FILE // MB} MB, heterogeneous cluster)",
        f"locality-only : {locality_total:.3f} simulated s",
        f"speed-aware   : {ranked_total:.3f} simulated s",
        f"speedup       : {speedup:.4f}x (floor 1.1x)",
    ]
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    (results_dir / "read_ranking.txt").write_text(text)

    write_bench_json(
        results_dir,
        "read",
        "ranking",
        {
            "uploads": RANK_UPLOADS,
            "reads": RANK_READS,
            "file_bytes": RANK_FILE,
            "locality_total_simulated_s": round(locality_total, 3),
            "ranked_total_simulated_s": round(ranked_total, 3),
            "speedup": round(speedup, 4),
        },
    )
    benchmark.extra_info["speedup"] = round(speedup, 4)
    assert speedup >= 1.1, (
        f"speed-aware ranking ({ranked_total:.3f}s) not 1.1x ahead of "
        f"locality-only ({locality_total:.3f}s)"
    )


def _mixed_workload(protocol: str, size: int):
    """One reader racing one writer; both phases' simulated durations."""
    env = Environment()
    config = SimulationConfig().with_hdfs(
        block_size=STREAM_BLOCK, packet_size=STREAM_PACKET
    )
    cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=config)
    deployment = (
        SmarthDeployment(cluster, observe=True)
        if protocol == "smarth"
        else HdfsDeployment(cluster, observe=True)
    )
    client = deployment.client()
    env.run(until=env.process(client.put("/f", size)))

    writer = deployment.client(name="mixer")
    write_proc = env.process(writer.put("/mix", size), name="mixer")
    read = env.run(until=env.process(HdfsReader(deployment).get("/f")))
    write = env.run(until=write_proc)
    wait = deployment.metrics.histogram("read.serve_wait")
    return {
        "read_simulated_s": round(read.duration, 4),
        "write_simulated_s": round(write.duration, 4),
        "serve_wait_count": wait.count,
        "serve_wait_max_s": round(wait.maximum, 4),
    }


def test_read_mixed_workload(benchmark, results_dir, scale):
    """Concurrent read+write A/B on baseline HDFS vs SMARTH ingest."""
    size = max(2 * STREAM_BLOCK, int(STREAM_FILE * scale))

    def run_both():
        return {p: _mixed_workload(p, size) for p in ("hdfs", "smarth")}

    measured = benchmark.pedantic(run_both, rounds=1, iterations=1)

    lines = [f"mixed read/write workload ({size // MB} MB each way)"]
    for protocol, numbers in measured.items():
        lines.append(
            f"{protocol:7s}: read {numbers['read_simulated_s']:.3f}s, "
            f"write {numbers['write_simulated_s']:.3f}s, serve waits "
            f"{numbers['serve_wait_count']} (max "
            f"{numbers['serve_wait_max_s']:.3f}s)"
        )
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    (results_dir / "read_mixed.txt").write_text(text)

    write_bench_json(
        results_dir, "read", "mixed", {"file_bytes": size, **measured}
    )
    for protocol, numbers in measured.items():
        assert numbers["read_simulated_s"] > 0, protocol
        assert numbers["write_simulated_s"] > 0, protocol
