"""Ablation A10: time-varying network conditions (§III-C's motivation).

"Since network status varies all the time, we utilize a local
optimization algorithm … and give a chance to test the bandwidth
performance of nodes with poor performance previously."  This sweep
degrades a datanode mid-upload and later restores it, and compares the
paper's exploring client (threshold 0.8) against never-swap and
always-swap variants — the dynamic setting where exploration must pay.
"""

from conftest import run_experiment

from repro.experiments import experiment_config
from repro.experiments.report import ExperimentResult
from repro.faults import FaultInjector
from repro.smarth import SmarthDeployment
from repro.units import GB
from repro.workloads import two_rack


def _run(threshold: float, size: int) -> float:
    config = experiment_config().with_smarth(local_opt_threshold=threshold)
    scenario = two_rack("small")  # no static throttle: dynamics only
    env, cluster = scenario.make(config)
    deployment = SmarthDeployment(cluster)
    injector = FaultInjector(deployment)
    # Two fast nodes degrade early and recover later: frozen records
    # would first over-use them, then under-use them after recovery.
    for name, t_slow, t_back in (("dn0", 3.0, 60.0), ("dn1", 8.0, 90.0)):
        injector.throttle_at(name, 20, at=t_slow)
        injector.unthrottle_at(name, at=t_back)
    client = deployment.client()
    result = env.run(until=env.process(client.put("/f", size)))
    env.run(until=env.now + 1)  # let trailing blockReceived reports land
    assert deployment.namenode.file_fully_replicated("/f")
    return result.duration


def ablation_dynamics(scale: float) -> ExperimentResult:
    size = int(8 * GB * scale)
    rows = []
    durations = {}
    for label, threshold in (
        ("paper (threshold 0.8)", 0.8),
        ("never swap (1.0)", 1.0),
        ("always swap (0.0)", 0.0),
    ):
        durations[label] = _run(threshold, size)
        rows.append({"variant": label, "smarth_s": round(durations[label], 1)})
    return ExperimentResult(
        experiment_id="ablation_dynamics",
        title="A10: time-varying bandwidth (two nodes degrade & recover)",
        columns=("variant", "smarth_s"),
        rows=rows,
        paper_claim={
            "claim": "§III-C: occasional swaps keep transmission records "
            "fresh when network status varies over time"
        },
        measured={
            "never_swap_penalty": round(
                durations["never swap (1.0)"]
                / durations["paper (threshold 0.8)"],
                2,
            ),
            "always_swap_penalty": round(
                durations["always swap (0.0)"]
                / durations["paper (threshold 0.8)"],
                2,
            ),
        },
    )


def test_ablation_dynamics(benchmark, results_dir, scale):
    result = run_experiment(benchmark, results_dir, ablation_dynamics, scale=scale)
    durations = {r["variant"]: r["smarth_s"] for r in result.rows}
    paper = durations["paper (threshold 0.8)"]
    # The paper's threshold is never beaten by more than noise, and at
    # least one extreme is clearly worse.
    assert paper <= min(durations.values()) * 1.1
    worst = max(
        durations["never swap (1.0)"], durations["always swap (0.0)"]
    )
    assert worst > paper * 1.05
