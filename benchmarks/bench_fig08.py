"""Figure 8: large cluster, cross-rack throttle sweep (8 GB uploads).

Paper: 245% at 50 Mbps, and large ≈ medium throughout (equal NICs).
"""

import pytest
from conftest import run_experiment

from repro.experiments import fig7, fig8


def test_fig8(benchmark, results_dir, scale):
    result = run_experiment(benchmark, results_dir, fig8, scale=scale)
    imps = {r["label"]: r["improvement_pct"] for r in result.rows}
    assert imps["50Mbps"] > imps["150Mbps"] > 0

    # Large tracks medium (same network capacity — §V-B.1).
    medium = fig7(scale=scale)
    med_rows = {r["label"]: r for r in medium.rows}
    for r in result.rows:
        assert r["hdfs_s"] == pytest.approx(
            med_rows[r["label"]]["hdfs_s"], rel=0.15
        )
        assert r["smarth_s"] == pytest.approx(
            med_rows[r["label"]]["smarth_s"], rel=0.25
        )
