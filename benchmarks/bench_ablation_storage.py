"""Ablation A7: storage platforms (the paper's §VII future work).

"We also plan to evaluate SMARTH on different storage platforms and
types such as RAID and SSD."  The sweep runs the two-rack 50 Mbps
scenario on four storage presets.  Expected shape: above the NIC rate
(ephemeral/SSD/RAID0), the disk is invisible and SMARTH's gain is
storage-independent; on a disk slower than the NIC (hdd-slow, 20 MB/s <
27 MB/s), ``T_w`` enters the §III-D cost model and compresses both
systems toward the disk rate.
"""

import pytest
from conftest import run_experiment

from repro.cluster import SMALL, STORAGE_PRESETS, build_homogeneous, with_storage
from repro.experiments import experiment_config
from repro.experiments.report import ExperimentResult
from repro.hdfs import HdfsDeployment
from repro.sim import Environment
from repro.smarth import SmarthDeployment
from repro.units import GB


def _run(storage: str, smarth: bool, size: int):
    config = experiment_config()
    env = Environment()
    itype = with_storage(SMALL, storage)
    cluster = build_homogeneous(env, itype, n_datanodes=9, config=config)
    cluster.throttle_rack_boundary(50)
    deployment = SmarthDeployment(cluster) if smarth else HdfsDeployment(cluster)
    client = deployment.client()
    result = env.run(until=env.process(client.put("/f", size)))
    assert deployment.namenode.file_fully_replicated("/f")
    return result.duration


def ablation_storage(scale: float) -> ExperimentResult:
    size = int(8 * GB * scale)
    rows = []
    for storage in STORAGE_PRESETS:
        hdfs_s = _run(storage, smarth=False, size=size)
        smarth_s = _run(storage, smarth=True, size=size)
        rows.append(
            {
                "storage": storage,
                "disk_MBps": int(STORAGE_PRESETS[storage] / (1024 * 1024)),
                "hdfs_s": round(hdfs_s, 1),
                "smarth_s": round(smarth_s, 1),
                "improvement_pct": round((hdfs_s / smarth_s - 1) * 100, 1),
            }
        )
    by_storage = {r["storage"]: r for r in rows}
    return ExperimentResult(
        experiment_id="ablation_storage",
        title="A7: storage platforms (small cluster, 50 Mbps two-rack)",
        columns=("storage", "disk_MBps", "hdfs_s", "smarth_s", "improvement_pct"),
        rows=rows,
        paper_claim={
            "claim": "§VII future work: evaluate SMARTH on RAID and SSD — "
            "prediction from the §III-D model: storage only matters when "
            "slower than the network"
        },
        measured={
            "ssd_vs_ephemeral_smarth": round(
                by_storage["ssd"]["smarth_s"]
                / by_storage["ephemeral"]["smarth_s"],
                3,
            ),
            "hdd_slow_smarth_penalty": round(
                by_storage["hdd-slow"]["smarth_s"]
                / by_storage["ephemeral"]["smarth_s"],
                2,
            ),
        },
    )


def test_ablation_storage(benchmark, results_dir, scale):
    result = run_experiment(benchmark, results_dir, ablation_storage, scale=scale)
    rows = {r["storage"]: r for r in result.rows}
    # The baseline is network-bound at every preset: its pipeline waits
    # for the 50 Mbps cross-rack hop, which dwarfs even the slow disk.
    for storage in rows:
        assert rows[storage]["hdfs_s"] == pytest.approx(
            rows["ephemeral"]["hdfs_s"], rel=0.02
        )
    # Faster-than-NIC storage barely moves SMARTH (FNFA waits only for
    # the final packet's write).
    for fast in ("ssd", "raid0"):
        assert rows[fast]["smarth_s"] == pytest.approx(
            rows["ephemeral"]["smarth_s"], rel=0.07
        )
    # A disk slower than the NIC delays every FNFA, so SMARTH (and only
    # SMARTH) pays: its improvement shrinks relative to fast storage.
    assert (
        rows["hdd-slow"]["smarth_s"] > rows["ephemeral"]["smarth_s"] * 1.02
    )
    assert (
        rows["hdd-slow"]["improvement_pct"] < rows["raid0"]["improvement_pct"]
    )
    # SMARTH still wins everywhere.
    assert all(r["improvement_pct"] > 0 for r in result.rows)
