"""Observability overhead: the repro.obs tracer on the pipeline hot path.

Two claims, one workload (the bench_kernel pipeline upload):

1. **Disabled is free.**  With ``observe=False`` (the default every
   experiment and test runs under), the instrumented code path must stay
   at the checked-in ``kernel.pipeline`` events/sec floor — the guard
   that instrumentation never leaks into the per-packet hot loop.
2. **Enabled is bounded.**  With ``observe=True`` the simulated timeline
   is unchanged (tracing is a passive observer) and the wall-clock
   overhead is recorded in ``BENCH_obs.json`` for trend tracking.
"""

import json
import pathlib
import time

from conftest import write_bench_json

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.hdfs import HdfsClient, HdfsDeployment
from repro.sim import Environment, total_events_processed
from repro.units import KB, MB

UPLOAD_BYTES = 256 * MB
FLOORS = json.loads(
    (pathlib.Path(__file__).parent / "perf_floor.json").read_text()
)


def _run_pipeline_workload(observe: bool):
    """The bench_kernel pipeline upload, with tracing on or off.

    Returns (duration, events, wall, deployment)."""
    config = SimulationConfig().with_hdfs(
        block_size=32 * MB, packet_size=64 * KB
    )
    env = Environment()
    cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=config)
    deployment = HdfsDeployment(cluster, observe=observe)
    client = HdfsClient(deployment)
    events_before = total_events_processed()
    wall_start = time.perf_counter()
    result = env.run(
        until=env.process(client.put("/bench/pipeline.bin", UPLOAD_BYTES))
    )
    wall = time.perf_counter() - wall_start
    events = total_events_processed() - events_before
    return result.duration, events, wall, deployment


def test_observability_overhead(benchmark, results_dir):
    duration_on, events_on, wall_on, deployment = _run_pipeline_workload(True)
    duration_off, events_off, wall_off, _ = benchmark.pedantic(
        lambda: _run_pipeline_workload(False), rounds=1, iterations=1
    )

    eps_off = round(events_off / wall_off) if wall_off > 0 else 0
    eps_on = round(events_on / wall_on) if wall_on > 0 else 0
    overhead_pct = (
        100.0 * (wall_on - wall_off) / wall_off if wall_off > 0 else 0.0
    )

    text = (
        "observability overhead (pipeline upload, 3-replica pipelines)\n"
        f"upload bytes          : {UPLOAD_BYTES}\n"
        f"disabled wall seconds : {wall_off:.3f}\n"
        f"enabled wall seconds  : {wall_on:.3f}\n"
        f"disabled events/sec   : {eps_off}\n"
        f"enabled events/sec    : {eps_on}\n"
        f"enabled overhead      : {overhead_pct:.1f}%\n"
        f"spans recorded        : {len(deployment.tracer)}\n"
    )
    print("\n" + text)
    (results_dir / "obs_overhead.txt").write_text(text)
    benchmark.extra_info["events_per_sec"] = eps_off
    benchmark.extra_info["overhead_pct"] = round(overhead_pct, 1)
    write_bench_json(
        results_dir,
        "obs",
        "overhead",
        {
            "upload_bytes": UPLOAD_BYTES,
            "disabled_wall_seconds": round(wall_off, 3),
            "enabled_wall_seconds": round(wall_on, 3),
            "disabled_events_per_sec": eps_off,
            "enabled_events_per_sec": eps_on,
            "enabled_overhead_pct": round(overhead_pct, 1),
            "spans_recorded": len(deployment.tracer),
        },
    )

    # Tracing is a passive observer: identical simulated results, same
    # heap traffic (the tracer schedules nothing).
    assert duration_on == duration_off
    assert events_on == events_off

    # Disabled-mode floor: same budget the kernel.pipeline gate enforces.
    floor = FLOORS["kernel"]["pipeline"]["events_per_sec"]
    tolerance = float(FLOORS.get("tolerance", 0.30))
    allowed = floor * (1.0 - tolerance)
    assert eps_off >= allowed, (
        f"tracing-disabled pipeline throughput {eps_off} events/s dropped "
        f"below the perf floor {floor} (min allowed {allowed:.0f}) — the "
        f"disabled tracer must stay out of the hot loop"
    )

    # Enabled mode actually recorded the workload.
    assert len(deployment.tracer) > 0
    assert deployment.metrics.counter_value("blocks_total") == 8
