"""Figure 13: heterogeneous cluster, upload time vs data size.

Paper: 8 GB takes 289 s on HDFS vs 205 s on SMARTH — 41% faster.  Shape:
linear in size; SMARTH wins by tens of percent without any throttling.
"""

from conftest import run_experiment

from repro.experiments import fig13


def test_fig13(benchmark, results_dir, scale):
    result = run_experiment(benchmark, results_dir, fig13, scale=scale)

    # Linearity of both series.
    hdfs_times = [r["hdfs_s"] for r in result.rows]
    smarth_times = [r["smarth_s"] for r in result.rows]
    assert hdfs_times == sorted(hdfs_times)
    assert smarth_times == sorted(smarth_times)

    # The heterogeneity-only win at the largest point (paper: 41% at
    # 8 GB); at reduced scale the learning warm-up eats into the gain.
    final = result.rows[-1]
    lower = 20 if scale >= 0.9 else 5
    assert lower < final["improvement_pct"] < 90
