"""Shared helpers for the benchmark harness.

Every ``bench_fig*.py`` regenerates one table/figure of the paper: it
runs the corresponding experiment driver once (simulations are
deterministic — repeated rounds would measure the same thing), prints
the series the paper plots, writes it to ``benchmarks/results/<id>.txt``
and attaches the headline numbers to pytest-benchmark's ``extra_info``.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — scale factor on the paper's file sizes
  (default 1.0 = the paper's 8 GB points, ~2 minutes for the whole
  suite; set e.g. 0.25 for a quick pass — assertions loosen accordingly
  because the speed-learning warm-up then covers a larger fraction of
  each upload).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.sim import total_events_processed

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_bench_json(
    results_dir: pathlib.Path, name: str, section: str, payload: dict
) -> pathlib.Path:
    """Merge ``payload`` into ``BENCH_<name>.json`` under ``section``.

    Machine-readable companion to the ``.txt`` results: CI jobs (the
    perf-smoke floor check) and the README's performance table read
    these instead of scraping text.
    """
    path = results_dir / f"BENCH_{name}.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data[section] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def run_experiment(benchmark, results_dir, driver, **kwargs):
    """Run one experiment driver under pytest-benchmark and report it.

    Besides the experiment's own headline numbers, reports kernel
    throughput (simulation events processed per wall-clock second) so
    perf regressions in the event loop show up in ``extra_info`` even
    when the simulated results are unchanged.
    """
    events_before = total_events_processed()
    wall_start = time.perf_counter()
    result = benchmark.pedantic(
        lambda: driver(**kwargs), rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - wall_start
    events = total_events_processed() - events_before
    text = result.to_text()
    print("\n" + text)
    (results_dir / f"{result.experiment_id}.txt").write_text(text + "\n")
    benchmark.extra_info["experiment"] = result.experiment_id
    benchmark.extra_info["measured"] = {
        k: str(v) for k, v in result.measured.items()
    }
    benchmark.extra_info["paper"] = result.paper_claim.get("claim", "")
    events_per_sec = round(events / elapsed) if elapsed > 0 else 0
    benchmark.extra_info["events"] = events
    benchmark.extra_info["events_per_sec"] = events_per_sec
    write_bench_json(
        results_dir,
        result.experiment_id,
        "experiment",
        {
            "experiment": result.experiment_id,
            "events_processed": events,
            "wall_seconds": round(elapsed, 3),
            "events_per_sec": events_per_sec,
            "measured": {k: str(v) for k, v in result.measured.items()},
        },
    )
    return result
