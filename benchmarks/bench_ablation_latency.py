"""Ablation A9: control-plane latency sensitivity.

The §III-D model charges ``T_n`` per block and treats ACK/control
latency as negligible.  This sweep raises the namenode RPC latency and
the link propagation latency by orders of magnitude to check (a) the
T_n·⌈D/B⌉ term shows up exactly as predicted, and (b) the data path is
insensitive to propagation latency (bandwidth-dominated), which is what
justifies modelling ACKs as latency-only.
"""

import pytest
from conftest import run_experiment

from repro.experiments import experiment_config
from repro.experiments.report import ExperimentResult
from repro.units import GB
from repro.workloads import run_upload, two_rack


def ablation_latency(scale: float) -> ExperimentResult:
    size = int(8 * GB * scale)
    scenario = two_rack("small", throttle_mbps=100)
    rows = []
    base = experiment_config()
    n_blocks = -(-size // base.hdfs.block_size)

    variants = [
        ("baseline", base),
        ("T_n x100 (100ms RPCs)", base.with_hdfs(namenode_rpc_latency=100e-3)),
        ("latency x50 (10ms links)", base.with_network(
            link_latency=10e-3, control_latency=10e-3
        )),
    ]
    durations = {}
    for label, config in variants:
        outcome = run_upload(scenario, "smarth", size, config=config)
        assert outcome.fully_replicated
        durations[label] = outcome.duration
        rows.append({"variant": label, "smarth_s": round(outcome.duration, 1)})

    predicted_rpc_cost = n_blocks * 99e-3  # ~one addBlock per block
    measured_rpc_cost = durations["T_n x100 (100ms RPCs)"] - durations["baseline"]
    return ExperimentResult(
        experiment_id="ablation_latency",
        title="A9: control-plane latency sensitivity (SMARTH, 100 Mbps)",
        columns=("variant", "smarth_s"),
        rows=rows,
        paper_claim={
            "claim": "§III-D charges T_n per block and neglects ACK "
            "latency (it overlaps data); both assumptions should be "
            "visible as exact, separable costs"
        },
        measured={
            "rpc_cost_predicted_s": round(predicted_rpc_cost, 1),
            "rpc_cost_measured_s": round(measured_rpc_cost, 1),
            "latency_x50_slowdown": round(
                durations["latency x50 (10ms links)"] / durations["baseline"], 3
            ),
        },
    )


def test_ablation_latency(benchmark, results_dir, scale):
    result = run_experiment(benchmark, results_dir, ablation_latency, scale=scale)
    measured = result.measured

    # (a) The T_n term appears at roughly the predicted magnitude.
    assert measured["rpc_cost_measured_s"] == pytest.approx(
        measured["rpc_cost_predicted_s"], rel=0.6
    )
    # (b) 50x the propagation latency costs only a few percent: the
    # upload is bandwidth-dominated, so latency-only ACKs are sound.
    assert measured["latency_x50_slowdown"] < 1.15
