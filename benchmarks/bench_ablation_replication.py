"""Ablation A8: replication-factor sweep.

The paper fixes replication at 3.  The factor shapes SMARTH twice over:
the pipeline cap is ``num/repli`` (more replicas → fewer concurrent
pipelines) and each extra replica adds a forwarding hop behind the first
datanode.  Expected shape: HDFS is almost replication-insensitive under
a cross-rack throttle (the pipeline runs at the throttle rate whatever
its length), while SMARTH's gain shrinks as replication rises.
"""

from conftest import run_experiment

from repro.experiments import experiment_config
from repro.experiments.report import ExperimentResult
from repro.units import GB
from repro.workloads import run_upload, two_rack


def ablation_replication(scale: float) -> ExperimentResult:
    size = int(8 * GB * scale)
    scenario = two_rack("small", throttle_mbps=50)
    rows = []
    for replication in (1, 2, 3, 4):
        config = experiment_config().with_hdfs(replication=replication)
        hdfs = run_upload(scenario, "hdfs", size, config=config)
        smarth = run_upload(scenario, "smarth", size, config=config)
        assert hdfs.fully_replicated and smarth.fully_replicated
        rows.append(
            {
                "replication": replication,
                "pipeline_cap": max(1, 9 // replication),
                "hdfs_s": round(hdfs.duration, 1),
                "smarth_s": round(smarth.duration, 1),
                "improvement_pct": round(
                    (hdfs.duration / smarth.duration - 1) * 100, 1
                ),
            }
        )
    return ExperimentResult(
        experiment_id="ablation_replication",
        title="A8: replication-factor sweep (small cluster, 50 Mbps)",
        columns=(
            "replication",
            "pipeline_cap",
            "hdfs_s",
            "smarth_s",
            "improvement_pct",
        ),
        rows=rows,
        paper_claim={
            "claim": "the paper evaluates replication 3 only; the §IV-C "
            "cap num/repli ties SMARTH's concurrency to the factor"
        },
        measured={
            f"repli{r['replication']}": f"{r['improvement_pct']:.0f}%"
            for r in rows
        },
        notes="replication 1 makes SMARTH ≡ HDFS by construction: "
        "Algorithm 1's TopN size is num/repli = num, i.e. every datanode "
        "— the 'random from TopN' first-datanode choice degenerates to "
        "the default random placement, and a one-node pipeline has no "
        "ACK chain to overlap.",
    )


def test_ablation_replication(benchmark, results_dir, scale):
    result = run_experiment(
        benchmark, results_dir, ablation_replication, scale=scale
    )
    rows = {r["replication"]: r for r in result.rows}

    # Replication 1: SMARTH ≡ HDFS by construction (see notes) — the
    # improvement collapses to ~zero.
    assert abs(rows[1]["improvement_pct"]) < 20
    # Replication 1 moves 1/3 of the bytes of replication 3: HDFS must
    # be significantly faster there.
    assert rows[1]["hdfs_s"] < rows[3]["hdfs_s"] * 0.8
    # HDFS under the throttle barely notices pipeline length beyond 2
    # (the cross-rack hop is the bottleneck at any length).
    assert rows[4]["hdfs_s"] < rows[2]["hdfs_s"] * 1.35
    # SMARTH keeps a clear edge at every factor that forces cross-rack
    # replication.
    for replication in (2, 3, 4):
        assert rows[replication]["improvement_pct"] > 25
