"""Legacy setup shim.

The execution environment has setuptools 65 without the ``wheel`` package,
so PEP 660 editable installs (``pip install -e .``) cannot build a wheel.
This shim enables the legacy ``--no-use-pep517`` editable path; all real
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
