"""Measure line coverage of ``src/repro`` under the tier-1 suite.

CI enforces coverage with pytest-cov (see the ``coverage`` job in
``.github/workflows/ci.yml``); this script reproduces the same
line-coverage number with only the standard library (``sys.settrace``),
so the ratchet floor can be re-measured in environments where
coverage.py is not installed.

Usage::

    PYTHONPATH=src python scripts/measure_coverage.py [pytest args...]

Extra arguments are forwarded to pytest (default: the tier-1 suite,
``-q tests``).  Prints a per-module table and the total percentage; the
total is what ``--cov-fail-under`` in CI ratchets against (CI's number
differs by a point or two because coverage.py's notion of executable
lines is slightly stricter than ``code.co_lines()``).
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src" / "repro"
SRC_PREFIX = str(SRC)

_executed: dict[str, set[int]] = {}


def _local_trace(frame, event, arg):
    if event == "line":
        _executed[frame.f_code.co_filename].add(frame.f_lineno)
    return _local_trace


def _global_trace(frame, event, arg):
    if event == "call" and frame.f_code.co_filename.startswith(SRC_PREFIX):
        _executed.setdefault(frame.f_code.co_filename, set())
        return _local_trace
    return None


def _executable_lines(path: Path) -> set[int]:
    """All line numbers that carry bytecode, per the compiled module."""
    lines: set[int] = set()
    stack = [compile(path.read_text(), str(path), "exec")]
    while stack:
        code = stack.pop()
        lines.update(ln for _, _, ln in code.co_lines() if ln is not None)
        stack.extend(
            const for const in code.co_consts if hasattr(const, "co_lines")
        )
    return lines


def main(argv: list[str]) -> int:
    import pytest

    pytest_args = argv or ["-q", "tests"]
    threading.settrace(_global_trace)
    sys.settrace(_global_trace)
    try:
        exit_code = pytest.main(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if exit_code != 0:
        print(f"pytest exited {exit_code}; coverage below is partial")

    total_exec = total_hit = 0
    rows = []
    for path in sorted(SRC.rglob("*.py")):
        executable = _executable_lines(path)
        if not executable:
            continue
        hit = _executed.get(str(path), set()) & executable
        total_exec += len(executable)
        total_hit += len(hit)
        rows.append(
            (
                str(path.relative_to(REPO)),
                len(hit),
                len(executable),
                100.0 * len(hit) / len(executable),
            )
        )

    width = max(len(name) for name, *_ in rows)
    print(f"\n{'module'.ljust(width)}  covered  executable    pct")
    for name, hit, executable, pct in rows:
        print(f"{name.ljust(width)}  {hit:7d}  {executable:10d}  {pct:5.1f}")
    pct_total = 100.0 * total_hit / total_exec if total_exec else 0.0
    print(f"{'TOTAL'.ljust(width)}  {total_hit:7d}  {total_exec:10d}  {pct_total:5.1f}")
    return int(exit_code)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
